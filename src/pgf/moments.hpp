// Exact factorial-moment algebra for probability generating functions.
//
// The closed-form results of the paper (eqs. 2-9) are expressed in terms of
// derivatives of the arrival PGF R and service PGF U evaluated at z = 1:
// R'(1), R''(1), R'''(1), ... (the factorial moments E[X(X-1)...]). Rather
// than differentiating symbolically (the authors used Macsyma overnight),
// we carry the 5-tuple (F(1), F'(1), F''(1), F'''(1), F''''(1)) through
// products and compositions with exact Leibniz / Faà di Bruno rules.
#pragma once

#include <cstdint>
#include <span>

namespace ksw::pgf {

/// Value and first four derivatives of a generating function at z = 1.
/// For a PGF, value == 1 and d1..d4 are the factorial moments
/// E[X], E[X(X-1)], E[X(X-1)(X-2)], E[X(X-1)(X-2)(X-3)].
struct MomentTuple {
  double value = 1.0;
  double d1 = 0.0;
  double d2 = 0.0;
  double d3 = 0.0;
  double d4 = 0.0;

  /// Tuple of the constant function 1.
  static constexpr MomentTuple one() noexcept { return {1, 0, 0, 0, 0}; }

  /// Tuple of the identity z.
  static constexpr MomentTuple identity_z() noexcept {
    return {1, 1, 0, 0, 0};
  }

  /// Tuple of z^m for integer m >= 0 (deterministic distribution at m).
  static MomentTuple monomial(std::uint64_t m) noexcept;

  /// Tuple from an explicit pmf p_j = P(X = j), j = 0..len-1.
  static MomentTuple from_pmf(std::span<const double> pmf) noexcept;

  /// Leibniz product rule: derivatives of F*G at 1.
  [[nodiscard]] static MomentTuple product(const MomentTuple& f,
                                           const MomentTuple& g) noexcept;

  /// Faà di Bruno: derivatives of F(G(z)) at z = 1. Requires the inner
  /// function to satisfy G(1) == 1 (always true for PGFs) because the outer
  /// tuple is known only at 1.
  [[nodiscard]] static MomentTuple compose(const MomentTuple& outer,
                                           const MomentTuple& inner);

  /// F^n via repeated products.
  [[nodiscard]] static MomentTuple power(const MomentTuple& f,
                                         std::uint64_t n) noexcept;

  /// Ordinary moments derived from the factorial moments.
  [[nodiscard]] double mean() const noexcept { return d1; }
  [[nodiscard]] double variance() const noexcept {
    return d2 + d1 - d1 * d1;
  }
};

}  // namespace ksw::pgf
