// Truncated power-series arithmetic over double coefficients.
//
// The waiting-time transform of Theorem 1,
//
//   t(z) = (1-mL)/L * (1-z)(1 - R(U(z))) / ((R(U(z)) - z)(1 - U(z))),
//
// is a ratio of compositions of probability generating functions. Expanding
// it as a power series around z = 0 yields the exact waiting-time
// probabilities P(w = j) as coefficients. This module supplies the series
// algebra (add, multiply, divide, compose) needed for that inversion.
//
// All operations are truncated to a fixed length; a Series of length N
// carries coefficients of z^0 .. z^{N-1}.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ksw::pgf {

/// Fixed-length truncated power series sum_{j<N} c_j z^j.
class Series {
 public:
  /// Zero series of the given length (length >= 1).
  explicit Series(std::size_t length);

  /// Series from explicit coefficients, truncated/zero-padded to `length`.
  Series(std::span<const double> coeffs, std::size_t length);

  static Series constant(double c, std::size_t length);
  /// The monomial z (or 0 if length == 1).
  static Series identity(std::size_t length);

  [[nodiscard]] std::size_t length() const noexcept { return c_.size(); }
  [[nodiscard]] double operator[](std::size_t j) const { return c_.at(j); }
  [[nodiscard]] double& operator[](std::size_t j) { return c_.at(j); }
  [[nodiscard]] const std::vector<double>& coefficients() const noexcept {
    return c_;
  }

  Series& operator+=(const Series& o);
  Series& operator-=(const Series& o);
  Series& operator*=(double s);

  friend Series operator+(Series a, const Series& b) { return a += b; }
  friend Series operator-(Series a, const Series& b) { return a -= b; }
  friend Series operator*(Series a, double s) { return a *= s; }
  friend Series operator*(double s, Series a) { return a *= s; }

  /// Truncated product (Cauchy convolution), O(N^2).
  [[nodiscard]] static Series mul(const Series& a, const Series& b);

  /// Smallest |den[0]| divide() accepts. The long-division recurrence
  /// multiplies every quotient coefficient by 1/den[0], so a leading
  /// coefficient at (or within rounding noise of) zero amplifies into
  /// inf/nan or garbage coefficients instead of failing loudly. 1e-12 is
  /// far below any leading probability mass a PGF ratio in this codebase
  /// produces, and far above cancellation noise of well-posed inputs.
  static constexpr double kDivideEpsilon = 1e-12;

  /// Truncated quotient num/den; requires |den[0]| >= kDivideEpsilon.
  [[nodiscard]] static Series divide(const Series& num, const Series& den);

  /// Composition outer(inner(z)) where `outer` is a finite polynomial given
  /// by its coefficients. Evaluated by Horner's rule on series, so cost is
  /// O(deg(outer) * N^2). No constraint on inner[0].
  [[nodiscard]] static Series compose_polynomial(
      std::span<const double> outer, const Series& inner);

  /// Integer power by repeated squaring (truncated).
  [[nodiscard]] static Series pow(const Series& base, unsigned n);

  /// Evaluate the truncated series at a real point (Horner).
  [[nodiscard]] double eval(double z) const noexcept;

  /// Sum of all retained coefficients — for a PGF series this approaches 1
  /// as the truncation length grows.
  [[nodiscard]] double coefficient_sum() const noexcept;

 private:
  std::vector<double> c_;
};

}  // namespace ksw::pgf
