#include "pgf/moments.hpp"

#include <cmath>
#include <stdexcept>

namespace ksw::pgf {

MomentTuple MomentTuple::monomial(std::uint64_t m) noexcept {
  const double md = static_cast<double>(m);
  MomentTuple t;
  t.value = 1.0;
  t.d1 = md;
  t.d2 = md * (md - 1.0);
  t.d3 = md * (md - 1.0) * (md - 2.0);
  t.d4 = md * (md - 1.0) * (md - 2.0) * (md - 3.0);
  return t;
}

MomentTuple MomentTuple::from_pmf(std::span<const double> pmf) noexcept {
  MomentTuple t{0, 0, 0, 0, 0};
  for (std::size_t j = 0; j < pmf.size(); ++j) {
    const double jd = static_cast<double>(j);
    const double p = pmf[j];
    t.value += p;
    t.d1 += p * jd;
    t.d2 += p * jd * (jd - 1.0);
    t.d3 += p * jd * (jd - 1.0) * (jd - 2.0);
    t.d4 += p * jd * (jd - 1.0) * (jd - 2.0) * (jd - 3.0);
  }
  return t;
}

MomentTuple MomentTuple::product(const MomentTuple& f,
                                 const MomentTuple& g) noexcept {
  MomentTuple t;
  t.value = f.value * g.value;
  t.d1 = f.d1 * g.value + f.value * g.d1;
  t.d2 = f.d2 * g.value + 2.0 * f.d1 * g.d1 + f.value * g.d2;
  t.d3 = f.d3 * g.value + 3.0 * f.d2 * g.d1 + 3.0 * f.d1 * g.d2 +
         f.value * g.d3;
  t.d4 = f.d4 * g.value + 4.0 * f.d3 * g.d1 + 6.0 * f.d2 * g.d2 +
         4.0 * f.d1 * g.d3 + f.value * g.d4;
  return t;
}

MomentTuple MomentTuple::compose(const MomentTuple& outer,
                                 const MomentTuple& inner) {
  if (std::abs(inner.value - 1.0) > 1e-9)
    throw std::invalid_argument(
        "MomentTuple::compose: inner function must satisfy G(1) == 1");
  const double g1 = inner.d1, g2 = inner.d2, g3 = inner.d3, g4 = inner.d4;
  MomentTuple t;
  t.value = outer.value;
  // Faà di Bruno's formula at z = 1 (Bell-polynomial coefficients).
  t.d1 = outer.d1 * g1;
  t.d2 = outer.d2 * g1 * g1 + outer.d1 * g2;
  t.d3 = outer.d3 * g1 * g1 * g1 + 3.0 * outer.d2 * g1 * g2 + outer.d1 * g3;
  t.d4 = outer.d4 * g1 * g1 * g1 * g1 + 6.0 * outer.d3 * g1 * g1 * g2 +
         outer.d2 * (4.0 * g1 * g3 + 3.0 * g2 * g2) + outer.d1 * g4;
  return t;
}

MomentTuple MomentTuple::power(const MomentTuple& f,
                               std::uint64_t n) noexcept {
  MomentTuple result = MomentTuple::one();
  MomentTuple base = f;
  while (n > 0) {
    if (n & 1u) result = product(result, base);
    n >>= 1u;
    if (n > 0) base = product(base, base);
  }
  return result;
}

}  // namespace ksw::pgf
