// Declarative sweep manifests for the paper-reproduction harness.
//
// A manifest (JSON, see manifests/paper.json) names a set of *sections*,
// each of which regenerates one table of the reproduction book. A section
// declares a comparison kind, a parameter grid (Cartesian axes and/or
// explicit points), a simulation budget, and agreement tolerances; the
// runner executes every grid point, comparing analytic predictions against
// replicated simulation with confidence intervals.
//
// Parsing is strict: unknown keys anywhere, malformed grids, and duplicate
// grid points are hard errors, so a typo in a manifest fails loudly rather
// than silently skipping a table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/json.hpp"

namespace ksw::sweep {

/// What a section compares.
enum class SectionKind {
  /// Exact Theorem-1 first-stage analysis vs the single-switch simulator
  /// (Section II-III worked examples: uniform, bulk, favorite-output,
  /// constant / geometric / multi-size service, M/M/1 limit).
  kFirstStage,
  /// Eq. 11/12 per-stage mean convergence vs the full-network simulator
  /// (Section IV).
  kStageConvergence,
  /// Section V total-waiting mean/variance and gamma-fit quantiles vs the
  /// full-network simulator at stage checkpoints.
  kTotalDelay,
  /// Finite-buffer flow control vs the infinite-queue model: blocking
  /// probability (accept ratio) and last-stage waiting across a buffer
  /// depth grid, gated at the deepest depth where the finite network must
  /// have converged to the paper's infinite-queue predictions.
  kFiniteBuffer,
};

[[nodiscard]] const char* to_string(SectionKind kind);

/// Simulation budget for one section (defaults merged from the manifest's
/// top-level "defaults" block).
struct RunBudget {
  unsigned replicates = 4;
  std::int64_t measure_cycles = 20'000;
  std::int64_t warmup_cycles = -1;  ///< -1 => measure_cycles / 10
  std::uint64_t seed = 1;
  double ci_level = 0.95;

  [[nodiscard]] std::int64_t effective_warmup() const {
    return warmup_cycles >= 0 ? warmup_cycles : measure_cycles / 10;
  }
};

/// Agreement tolerances. A cell passes when
///   |sim - analytic| <= abs + rel * |analytic| + ci_half_width,
/// i.e. the manifest tolerance widened by the Monte-Carlo uncertainty at
/// the configured CI level. `rel` is mean_rel for mean-type cells and
/// var_rel for variance-type cells.
struct Tolerance {
  double mean_rel = 0.05;
  double var_rel = 0.15;
  double abs = 0.01;
};

/// One parameter combination of a section's grid. Unset keys take these
/// defaults, so points only spell out what varies.
struct Point {
  unsigned k = 2;
  unsigned s = 0;  ///< output ports; 0 => k (network sections require s==k)
  double p = 0.5;
  unsigned bulk = 1;
  double q = 0.0;
  /// Hot-spot traffic (finite_buffer sections only — the other kinds gate
  /// against analytic models that assume uniform/favorite traffic). The
  /// target port is range-checked at parse time against k^stages.
  double hotspot = 0.0;
  std::uint32_t hotspot_target = 0;
  std::string service = "det:1";

  /// Stable human-readable label ("k=2 p=0.5 service=det:4"), listing only
  /// values that differ from the defaults plus always k and p.
  [[nodiscard]] std::string label() const;

  [[nodiscard]] bool operator==(const Point& other) const = default;
};

struct Section {
  std::string id;     ///< file stem under the output dir; [a-z0-9-]
  std::string title;
  std::string notes;  ///< optional prose shown under the page heading
  SectionKind kind = SectionKind::kFirstStage;
  unsigned stages = 8;                ///< network sections
  std::vector<unsigned> checkpoints;  ///< total-delay sections (ascending)
  /// finite_buffer sections: ascending buffer-depth grid (required), the
  /// flow-control scheme ("vct"|"saf"|"credit"), and the credit return
  /// latency (credit scheme only).
  std::vector<unsigned> depths;
  std::string flow = "vct";
  unsigned credit_latency = 2;
  RunBudget budget;
  Tolerance tol;
  std::vector<Point> points;  ///< expanded grid, in declaration order
};

struct Manifest {
  std::string name;
  std::string title;
  std::string output_dir = "docs/reproduction";
  std::string index_path = "docs/REPRODUCTION.md";
  RunBudget defaults;
  Tolerance default_tol;
  std::vector<Section> sections;
};

/// Parse a manifest document. Throws ksw::Error(kUsage) with a
/// descriptive message on any schema violation.
[[nodiscard]] Manifest parse_manifest(const io::Json& doc);

/// Read + parse a manifest file. Throws ksw::Error(kIo) when the file
/// cannot be opened and ksw::Error(kUsage) on schema violations.
[[nodiscard]] Manifest load_manifest(const std::string& path);

}  // namespace ksw::sweep
