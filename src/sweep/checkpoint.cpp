#include "sweep/checkpoint.hpp"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "io/atomic.hpp"
#include "io/json.hpp"
#include "support/error.hpp"

namespace ksw::sweep {

namespace {

constexpr const char* kSchema = "ksw.checkpoint/v1";

/// Bit-exact double encoding. io::Json prints numbers with 12 significant
/// digits — fine for reports, fatal for a journal whose whole point is
/// byte-identical resumed output — so doubles travel as hexfloat strings.
std::string encode_double(double v) {
  std::ostringstream os;
  os << std::hexfloat << v;
  return os.str();
}

double decode_double(const io::Json& j, const char* what) {
  if (!j.is_string())
    throw io_error(std::string("checkpoint: ") + what +
                   " must be a hexfloat string");
  try {
    return std::stod(j.as_string());
  } catch (const std::exception&) {
    throw io_error(std::string("checkpoint: cannot parse ") + what + " '" +
                   j.as_string() + "'");
  }
}

io::Json cell_to_json(const Cell& cell) {
  io::Json j = io::Json::object();
  j.set("metric", cell.metric);
  j.set("analytic", encode_double(cell.analytic));
  j.set("simulated", encode_double(cell.simulated));
  j.set("ci_half", encode_double(cell.ci_half));
  j.set("rel_error", encode_double(cell.rel_error));
  j.set("mean_like", cell.mean_like);
  j.set("gated", cell.gated);
  j.set("pass", cell.pass);
  return j;
}

Cell cell_from_json(const io::Json& j) {
  Cell cell;
  cell.metric = j.at("metric").as_string();
  cell.analytic = decode_double(j.at("analytic"), "analytic");
  cell.simulated = decode_double(j.at("simulated"), "simulated");
  cell.ci_half = decode_double(j.at("ci_half"), "ci_half");
  cell.rel_error = decode_double(j.at("rel_error"), "rel_error");
  cell.mean_like = j.at("mean_like").as_bool();
  cell.gated = j.at("gated").as_bool();
  cell.pass = j.at("pass").as_bool();
  return cell;
}

io::Json point_to_json(const Point& p) {
  io::Json j = io::Json::object();
  j.set("k", static_cast<std::int64_t>(p.k));
  j.set("s", static_cast<std::int64_t>(p.s));
  j.set("p", encode_double(p.p));
  j.set("bulk", static_cast<std::int64_t>(p.bulk));
  j.set("q", encode_double(p.q));
  j.set("hotspot", encode_double(p.hotspot));
  j.set("hotspot_target", static_cast<std::int64_t>(p.hotspot_target));
  j.set("service", p.service);
  return j;
}

Point point_from_json(const io::Json& j) {
  Point p;
  p.k = static_cast<unsigned>(j.at("k").as_int());
  p.s = static_cast<unsigned>(j.at("s").as_int());
  p.p = decode_double(j.at("p"), "p");
  p.bulk = static_cast<unsigned>(j.at("bulk").as_int());
  p.q = decode_double(j.at("q"), "q");
  // Journals written before the hotspot fields existed omit them; the
  // defaults (no hotspot) are exactly what those runs simulated.
  if (j.contains("hotspot")) p.hotspot = decode_double(j.at("hotspot"), "hotspot");
  if (j.contains("hotspot_target"))
    p.hotspot_target =
        static_cast<std::uint32_t>(j.at("hotspot_target").as_int());
  p.service = j.at("service").as_string();
  return p;
}

io::Json result_to_json(const PointResult& r) {
  io::Json j = io::Json::object();
  j.set("point", point_to_json(r.point));
  j.set("label", r.label);
  // samples is a count; decimal string avoids the double round-trip.
  j.set("samples", std::to_string(r.samples));
  io::Json cells = io::Json::array();
  for (const Cell& cell : r.cells) cells.push_back(cell_to_json(cell));
  j.set("cells", std::move(cells));
  return j;
}

PointResult result_from_json(const io::Json& j) {
  PointResult r;
  r.point = point_from_json(j.at("point"));
  r.label = j.at("label").as_string();
  r.samples = std::stoull(j.at("samples").as_string());
  const io::Json& cells = j.at("cells");
  for (std::size_t i = 0; i < cells.size(); ++i)
    r.cells.push_back(cell_from_json(cells.at(i)));
  return r;
}

}  // namespace

std::string manifest_fingerprint(const std::string& raw_text) {
  // FNV-1a 64.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : raw_text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  std::ostringstream os;
  os << std::hex << h;
  return os.str();
}

Journal::Journal(std::string path, std::string fingerprint)
    : path_(std::move(path)), fingerprint_(std::move(fingerprint)) {}

Journal Journal::load_or_create(std::string path, std::string fingerprint) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Journal(std::move(path), std::move(fingerprint));

  Journal journal(path, fingerprint);
  std::string line;
  bool saw_header = false;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    io::Json doc;
    try {
      doc = io::Json::parse(line);
    } catch (const std::exception& e) {
      throw io_error("checkpoint: " + path + ":" + std::to_string(line_no) +
                     ": corrupt journal line (" + e.what() +
                     "); delete the file or run without --resume");
    }
    try {
      if (!saw_header) {
        const std::string schema = doc.at("schema").as_string();
        if (schema != kSchema)
          throw io_error("checkpoint: " + path + ": unknown schema '" +
                         schema + "' (expected " + kSchema + ")");
        const std::string recorded = doc.at("fingerprint").as_string();
        if (recorded != fingerprint)
          throw usage_error(
              "checkpoint: " + path + ": manifest fingerprint " + recorded +
              " does not match the current manifest (" + fingerprint +
              "); the manifest changed since the interrupted run — delete "
              "the journal or rerun without --resume");
        saw_header = true;
        continue;
      }
      Entry entry;
      entry.section_id = doc.at("section").as_string();
      entry.point_index =
          static_cast<std::size_t>(doc.at("index").as_int());
      entry.result = result_from_json(doc.at("result"));
      journal.entries_.push_back(std::move(entry));
    } catch (const Error&) {
      throw;
    } catch (const std::exception& e) {
      throw io_error("checkpoint: " + path + ":" + std::to_string(line_no) +
                     ": malformed journal entry (" + e.what() +
                     "); delete the file or run without --resume");
    }
  }
  return journal;
}

const PointResult* Journal::find(const std::string& section_id,
                                 std::size_t point_index) const {
  for (const Entry& e : entries_)
    if (e.point_index == point_index && e.section_id == section_id)
      return &e.result;
  return nullptr;
}

void Journal::record(const std::string& section_id, std::size_t point_index,
                     const PointResult& result) {
  Entry entry;
  entry.section_id = section_id;
  entry.point_index = point_index;
  entry.result = result;
  entries_.push_back(std::move(entry));
  io::atomic_write_file(path_, serialize());
}

std::string Journal::serialize() const {
  std::ostringstream os;
  {
    io::Json header = io::Json::object();
    header.set("schema", kSchema);
    header.set("fingerprint", fingerprint_);
    header.write(os);
    os << '\n';
  }
  for (const Entry& e : entries_) {
    io::Json line = io::Json::object();
    line.set("section", e.section_id);
    line.set("index", static_cast<std::int64_t>(e.point_index));
    line.set("result", result_to_json(e.result));
    line.write(os);
    os << '\n';
  }
  return os.str();
}

void Journal::remove_file(const std::string& path) {
  std::remove(path.c_str());
}

}  // namespace ksw::sweep
