#include "sweep/checkpoint.hpp"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "io/atomic.hpp"
#include "io/json.hpp"
#include "support/error.hpp"

namespace ksw::sweep {

namespace {

constexpr const char* kSchema = "ksw.checkpoint/v2";
/// v1 journals carry the same point records and no shards; loading one
/// just means a resumed run recomputes any interrupted point wholesale.
constexpr const char* kSchemaV1 = "ksw.checkpoint/v1";

/// Bit-exact double encoding. io::Json prints numbers with 12 significant
/// digits — fine for reports, fatal for a journal whose whole point is
/// byte-identical resumed output — so doubles travel as hexfloat strings.
std::string encode_double(double v) {
  std::ostringstream os;
  os << std::hexfloat << v;
  return os.str();
}

double decode_double(const io::Json& j, const char* what) {
  if (!j.is_string())
    throw io_error(std::string("checkpoint: ") + what +
                   " must be a hexfloat string");
  try {
    return std::stod(j.as_string());
  } catch (const std::exception&) {
    throw io_error(std::string("checkpoint: cannot parse ") + what + " '" +
                   j.as_string() + "'");
  }
}

io::Json cell_to_json(const Cell& cell) {
  io::Json j = io::Json::object();
  j.set("metric", cell.metric);
  j.set("analytic", encode_double(cell.analytic));
  j.set("simulated", encode_double(cell.simulated));
  j.set("ci_half", encode_double(cell.ci_half));
  j.set("rel_error", encode_double(cell.rel_error));
  j.set("mean_like", cell.mean_like);
  j.set("gated", cell.gated);
  j.set("pass", cell.pass);
  return j;
}

Cell cell_from_json(const io::Json& j) {
  Cell cell;
  cell.metric = j.at("metric").as_string();
  cell.analytic = decode_double(j.at("analytic"), "analytic");
  cell.simulated = decode_double(j.at("simulated"), "simulated");
  cell.ci_half = decode_double(j.at("ci_half"), "ci_half");
  cell.rel_error = decode_double(j.at("rel_error"), "rel_error");
  cell.mean_like = j.at("mean_like").as_bool();
  cell.gated = j.at("gated").as_bool();
  cell.pass = j.at("pass").as_bool();
  return cell;
}

io::Json point_to_json(const Point& p) {
  io::Json j = io::Json::object();
  j.set("k", static_cast<std::int64_t>(p.k));
  j.set("s", static_cast<std::int64_t>(p.s));
  j.set("p", encode_double(p.p));
  j.set("bulk", static_cast<std::int64_t>(p.bulk));
  j.set("q", encode_double(p.q));
  j.set("hotspot", encode_double(p.hotspot));
  j.set("hotspot_target", static_cast<std::int64_t>(p.hotspot_target));
  j.set("service", p.service);
  return j;
}

Point point_from_json(const io::Json& j) {
  Point p;
  p.k = static_cast<unsigned>(j.at("k").as_int());
  p.s = static_cast<unsigned>(j.at("s").as_int());
  p.p = decode_double(j.at("p"), "p");
  p.bulk = static_cast<unsigned>(j.at("bulk").as_int());
  p.q = decode_double(j.at("q"), "q");
  // Journals written before the hotspot fields existed omit them; the
  // defaults (no hotspot) are exactly what those runs simulated.
  if (j.contains("hotspot")) p.hotspot = decode_double(j.at("hotspot"), "hotspot");
  if (j.contains("hotspot_target"))
    p.hotspot_target =
        static_cast<std::uint32_t>(j.at("hotspot_target").as_int());
  p.service = j.at("service").as_string();
  return p;
}

io::Json result_to_json(const PointResult& r) {
  io::Json j = io::Json::object();
  j.set("point", point_to_json(r.point));
  j.set("label", r.label);
  // samples is a count; decimal string avoids the double round-trip.
  j.set("samples", std::to_string(r.samples));
  io::Json cells = io::Json::array();
  for (const Cell& cell : r.cells) cells.push_back(cell_to_json(cell));
  j.set("cells", std::move(cells));
  return j;
}

PointResult result_from_json(const io::Json& j) {
  PointResult r;
  r.point = point_from_json(j.at("point"));
  r.label = j.at("label").as_string();
  r.samples = std::stoull(j.at("samples").as_string());
  const io::Json& cells = j.at("cells");
  for (std::size_t i = 0; i < cells.size(); ++i)
    r.cells.push_back(cell_from_json(cells.at(i)));
  return r;
}

// ---- Replicate shards ------------------------------------------------
//
// Everything in a shard is exact integer state, so the wire format is
// decimal strings (including the 128-bit moment power sums) — no hexfloat
// needed, and the merge on resume is the same exact integer addition an
// uninterrupted run performs.

std::string u128_to_string(__uint128_t v) {
  if (v == 0) return "0";
  std::string out;
  while (v != 0) {
    out.insert(out.begin(),
               static_cast<char>('0' + static_cast<unsigned>(v % 10)));
    v /= 10;
  }
  return out;
}

std::string i128_to_string(__int128_t v) {
  if (v < 0) return "-" + u128_to_string(static_cast<__uint128_t>(-v));
  return u128_to_string(static_cast<__uint128_t>(v));
}

__uint128_t u128_from_string(const std::string& text, const char* what) {
  if (text.empty())
    throw io_error(std::string("checkpoint: empty ") + what);
  __uint128_t v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9')
      throw io_error(std::string("checkpoint: cannot parse ") + what + " '" +
                     text + "'");
    v = v * 10 + static_cast<unsigned>(c - '0');
  }
  return v;
}

__int128_t i128_from_string(const std::string& text, const char* what) {
  if (!text.empty() && text.front() == '-')
    return -static_cast<__int128_t>(u128_from_string(text.substr(1), what));
  return static_cast<__int128_t>(u128_from_string(text, what));
}

std::uint64_t u64_from_json(const io::Json& j, const char* what) {
  if (!j.is_string())
    throw io_error(std::string("checkpoint: ") + what +
                   " must be a decimal string");
  try {
    return std::stoull(j.as_string());
  } catch (const std::exception&) {
    throw io_error(std::string("checkpoint: cannot parse ") + what + " '" +
                   j.as_string() + "'");
  }
}

std::int64_t i64_from_json(const io::Json& j, const char* what) {
  if (!j.is_string())
    throw io_error(std::string("checkpoint: ") + what +
                   " must be a decimal string");
  try {
    return std::stoll(j.as_string());
  } catch (const std::exception&) {
    throw io_error(std::string("checkpoint: cannot parse ") + what + " '" +
                   j.as_string() + "'");
  }
}

io::Json tally_to_json(const stats::MomentTally& t) {
  const stats::MomentTally::Raw raw = t.raw();
  io::Json j = io::Json::object();
  j.set("n", std::to_string(raw.n));
  j.set("s1", std::to_string(raw.s1));
  j.set("s2", u128_to_string(raw.s2));
  j.set("s3", i128_to_string(raw.s3));
  j.set("min", std::to_string(raw.min));
  j.set("max", std::to_string(raw.max));
  return j;
}

stats::MomentTally tally_from_json(const io::Json& j) {
  stats::MomentTally::Raw raw;
  raw.n = u64_from_json(j.at("n"), "tally n");
  raw.s1 = i64_from_json(j.at("s1"), "tally s1");
  raw.s2 = u128_from_string(j.at("s2").as_string(), "tally s2");
  raw.s3 = i128_from_string(j.at("s3").as_string(), "tally s3");
  raw.min = i64_from_json(j.at("min"), "tally min");
  raw.max = i64_from_json(j.at("max"), "tally max");
  return stats::MomentTally::from_raw(raw);
}

/// Sparse [value, count] pairs; exact and compact for the long-tailed
/// waiting-time tallies.
io::Json hist_to_json(const stats::IntHistogram& h) {
  io::Json j = io::Json::array();
  for (std::int64_t v = 0; v <= h.max_value(); ++v) {
    const std::uint64_t count = h.count(v);
    if (count == 0) continue;
    io::Json pair = io::Json::array();
    pair.push_back(std::to_string(v));
    pair.push_back(std::to_string(count));
    j.push_back(std::move(pair));
  }
  return j;
}

stats::IntHistogram hist_from_json(const io::Json& j) {
  stats::IntHistogram h;
  for (std::size_t i = 0; i < j.size(); ++i) {
    const io::Json& pair = j.at(i);
    if (pair.size() != 2)
      throw io_error("checkpoint: histogram entry must be [value, count]");
    h.add(i64_from_json(pair.at(0), "histogram value"),
          u64_from_json(pair.at(1), "histogram count"));
  }
  return h;
}

io::Json tally_vec_to_json(const std::vector<stats::MomentTally>& v) {
  io::Json j = io::Json::array();
  for (const stats::MomentTally& t : v) j.push_back(tally_to_json(t));
  return j;
}

std::vector<stats::MomentTally> tally_vec_from_json(const io::Json& j) {
  std::vector<stats::MomentTally> v;
  for (std::size_t i = 0; i < j.size(); ++i)
    v.push_back(tally_from_json(j.at(i)));
  return v;
}

io::Json network_shard_to_json(const sim::NetworkResults& r) {
  io::Json j = io::Json::object();
  j.set("stage_wait", tally_vec_to_json(r.stage_wait));
  j.set("stage_depth", tally_vec_to_json(r.stage_depth));
  io::Json totals = io::Json::array();
  for (const stats::IntHistogram& h : r.total_wait)
    totals.push_back(hist_to_json(h));
  j.set("total_wait", std::move(totals));
  j.set("injected", std::to_string(r.packets_injected));
  j.set("delivered", std::to_string(r.packets_delivered));
  j.set("dropped", std::to_string(r.packets_dropped));
  return j;
}

sim::NetworkResults network_shard_from_json(const io::Json& j) {
  sim::NetworkResults r;
  r.stage_wait = tally_vec_from_json(j.at("stage_wait"));
  r.stage_depth = tally_vec_from_json(j.at("stage_depth"));
  const io::Json& totals = j.at("total_wait");
  for (std::size_t i = 0; i < totals.size(); ++i)
    r.total_wait.push_back(hist_from_json(totals.at(i)));
  r.packets_injected = u64_from_json(j.at("injected"), "injected");
  r.packets_delivered = u64_from_json(j.at("delivered"), "delivered");
  r.packets_dropped = u64_from_json(j.at("dropped"), "dropped");
  return r;
}

io::Json first_stage_shard_to_json(const sim::FirstStageResults& r) {
  io::Json j = io::Json::object();
  j.set("waiting", tally_to_json(r.waiting));
  j.set("histogram", hist_to_json(r.histogram));
  j.set("queue_depth", tally_to_json(r.queue_depth));
  j.set("messages", std::to_string(r.messages));
  return j;
}

sim::FirstStageResults first_stage_shard_from_json(const io::Json& j) {
  sim::FirstStageResults r;
  r.waiting = tally_from_json(j.at("waiting"));
  r.histogram = hist_from_json(j.at("histogram"));
  r.queue_depth = tally_from_json(j.at("queue_depth"));
  r.messages = u64_from_json(j.at("messages"), "messages");
  return r;
}

io::Json shard_key_to_json(const Journal::ShardKey& key, const char* kind) {
  io::Json j = io::Json::object();
  j.set("kind", kind);
  j.set("section", key.section_id);
  j.set("index", static_cast<std::int64_t>(key.point_index));
  j.set("run", key.run);
  j.set("replicate", static_cast<std::int64_t>(key.replicate));
  return j;
}

Journal::ShardKey shard_key_from_json(const io::Json& j) {
  Journal::ShardKey key;
  key.section_id = j.at("section").as_string();
  key.point_index = static_cast<std::size_t>(j.at("index").as_int());
  key.run = j.at("run").as_string();
  key.replicate = static_cast<std::size_t>(j.at("replicate").as_int());
  return key;
}

}  // namespace

std::string manifest_fingerprint(const std::string& raw_text) {
  // FNV-1a 64.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : raw_text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  std::ostringstream os;
  os << std::hex << h;
  return os.str();
}

Journal::Journal(std::string path, std::string fingerprint)
    : path_(std::move(path)), fingerprint_(std::move(fingerprint)) {}

Journal Journal::load_or_create(std::string path, std::string fingerprint) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Journal(std::move(path), std::move(fingerprint));

  Journal journal(path, fingerprint);
  std::string line;
  bool saw_header = false;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    io::Json doc;
    try {
      doc = io::Json::parse(line);
    } catch (const std::exception& e) {
      throw io_error("checkpoint: " + path + ":" + std::to_string(line_no) +
                     ": corrupt journal line (" + e.what() +
                     "); delete the file or run without --resume");
    }
    try {
      if (!saw_header) {
        const std::string schema = doc.at("schema").as_string();
        if (schema != kSchema && schema != kSchemaV1)
          throw io_error("checkpoint: " + path + ": unknown schema '" +
                         schema + "' (expected " + kSchema + ")");
        const std::string recorded = doc.at("fingerprint").as_string();
        if (recorded != fingerprint)
          throw usage_error(
              "checkpoint: " + path + ": manifest fingerprint " + recorded +
              " does not match the current manifest (" + fingerprint +
              "); the manifest changed since the interrupted run — delete "
              "the journal or rerun without --resume");
        saw_header = true;
        continue;
      }
      if (doc.contains("shard")) {
        const io::Json& shard = doc.at("shard");
        const std::string kind = shard.at("kind").as_string();
        if (kind == "network") {
          NetworkShard s;
          s.key = shard_key_from_json(shard);
          s.results = network_shard_from_json(shard.at("data"));
          journal.network_shards_.push_back(std::move(s));
        } else if (kind == "first_stage") {
          FirstStageShard s;
          s.key = shard_key_from_json(shard);
          s.results = first_stage_shard_from_json(shard.at("data"));
          journal.first_stage_shards_.push_back(std::move(s));
        } else {
          throw io_error("checkpoint: " + path + ":" +
                         std::to_string(line_no) + ": unknown shard kind '" +
                         kind + "'");
        }
        continue;
      }
      Entry entry;
      entry.section_id = doc.at("section").as_string();
      entry.point_index =
          static_cast<std::size_t>(doc.at("index").as_int());
      entry.result = result_from_json(doc.at("result"));
      journal.entries_.push_back(std::move(entry));
    } catch (const Error&) {
      throw;
    } catch (const std::exception& e) {
      throw io_error("checkpoint: " + path + ":" + std::to_string(line_no) +
                     ": malformed journal entry (" + e.what() +
                     "); delete the file or run without --resume");
    }
  }
  return journal;
}

const PointResult* Journal::find(const std::string& section_id,
                                 std::size_t point_index) const {
  for (const Entry& e : entries_)
    if (e.point_index == point_index && e.section_id == section_id)
      return &e.result;
  return nullptr;
}

void Journal::record(const std::string& section_id, std::size_t point_index,
                     const PointResult& result) {
  Entry entry;
  entry.section_id = section_id;
  entry.point_index = point_index;
  entry.result = result;
  const std::lock_guard<std::mutex> lock(*mutex_);
  entries_.push_back(std::move(entry));
  prune_shards_locked(section_id, point_index);
  io::atomic_write_file(path_, serialize());
}

void Journal::prune_shards_locked(const std::string& section_id,
                                  std::size_t point_index) {
  const auto stale = [&](const ShardKey& key) {
    return key.point_index == point_index && key.section_id == section_id;
  };
  std::erase_if(network_shards_,
                [&](const NetworkShard& s) { return stale(s.key); });
  std::erase_if(first_stage_shards_,
                [&](const FirstStageShard& s) { return stale(s.key); });
}

bool Journal::shardable(const sim::NetworkResults& r) noexcept {
  return r.stage_hist.empty() && !r.stage_covariance.has_value() &&
         r.metrics.empty() && r.convergence.empty();
}

void Journal::record_shard(const ShardKey& key, const sim::NetworkResults& r) {
  if (!shardable(r)) return;
  const std::lock_guard<std::mutex> lock(*mutex_);
  network_shards_.push_back(NetworkShard{key, r});
  io::atomic_write_file(path_, serialize());
}

void Journal::record_shard(const ShardKey& key,
                           const sim::FirstStageResults& r) {
  const std::lock_guard<std::mutex> lock(*mutex_);
  first_stage_shards_.push_back(FirstStageShard{key, r});
  io::atomic_write_file(path_, serialize());
}

namespace {

bool same_key(const Journal::ShardKey& a, const Journal::ShardKey& b) {
  return a.point_index == b.point_index && a.replicate == b.replicate &&
         a.section_id == b.section_id && a.run == b.run;
}

}  // namespace

std::optional<sim::NetworkResults> Journal::find_network_shard(
    const ShardKey& key) const {
  const std::lock_guard<std::mutex> lock(*mutex_);
  for (const NetworkShard& s : network_shards_)
    if (same_key(s.key, key)) return s.results;
  return std::nullopt;
}

std::optional<sim::FirstStageResults> Journal::find_first_stage_shard(
    const ShardKey& key) const {
  const std::lock_guard<std::mutex> lock(*mutex_);
  for (const FirstStageShard& s : first_stage_shards_)
    if (same_key(s.key, key)) return s.results;
  return std::nullopt;
}

std::size_t Journal::shard_count() const {
  const std::lock_guard<std::mutex> lock(*mutex_);
  return network_shards_.size() + first_stage_shards_.size();
}

std::string Journal::serialize() const {
  std::ostringstream os;
  {
    io::Json header = io::Json::object();
    header.set("schema", kSchema);
    header.set("fingerprint", fingerprint_);
    header.write(os);
    os << '\n';
  }
  for (const Entry& e : entries_) {
    io::Json line = io::Json::object();
    line.set("section", e.section_id);
    line.set("index", static_cast<std::int64_t>(e.point_index));
    line.set("result", result_to_json(e.result));
    line.write(os);
    os << '\n';
  }
  for (const NetworkShard& s : network_shards_) {
    io::Json shard = shard_key_to_json(s.key, "network");
    shard.set("data", network_shard_to_json(s.results));
    io::Json line = io::Json::object();
    line.set("shard", std::move(shard));
    line.write(os);
    os << '\n';
  }
  for (const FirstStageShard& s : first_stage_shards_) {
    io::Json shard = shard_key_to_json(s.key, "first_stage");
    shard.set("data", first_stage_shard_to_json(s.results));
    io::Json line = io::Json::object();
    line.set("shard", std::move(shard));
    line.write(os);
    os << '\n';
  }
  return os.str();
}

void Journal::remove_file(const std::string& path) {
  std::remove(path.c_str());
}

}  // namespace ksw::sweep
