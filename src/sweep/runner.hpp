// Executes a sweep manifest: every grid point of every section, comparing
// analytic predictions against replicated simulation.
//
// Determinism contract (inherited from sim::replicate_*): each replicate's
// seed depends only on (section seed, replicate index); replicates run on
// the shared thread pool but are merged and reduced in strict index order,
// so every number in a SweepResult — point estimates, CI half-widths, gate
// verdicts — is bit-identical for a fixed manifest at any thread count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "par/thread_pool.hpp"
#include "sweep/manifest.hpp"

namespace ksw::sweep {

/// One compared quantity (a row cell pair in the generated tables).
struct Cell {
  std::string metric;     ///< e.g. "E[w]", "stage 3 E[w]", "n=6 Var[total]"
  double analytic = 0.0;  ///< model prediction
  double simulated = 0.0; ///< merged-replicate point estimate
  double ci_half = 0.0;   ///< CI half-width at the section's ci_level
  double rel_error = 0.0; ///< |sim - analytic| / max(|analytic|, 1e-12)
  bool mean_like = true;  ///< gates with mean_rel (else var_rel)
  bool gated = true;      ///< informational cells carry no pass/fail
  bool pass = true;

  /// Evaluate the agreement gate against `tol` (sets rel_error and pass).
  void judge(const Tolerance& tol);
};

/// All comparisons for one grid point.
struct PointResult {
  Point point;
  std::string label;
  std::uint64_t samples = 0;  ///< messages/packets measured (all replicates)
  std::vector<Cell> cells;

  [[nodiscard]] bool pass() const;
};

struct SectionResult {
  Section section;
  std::vector<PointResult> points;

  [[nodiscard]] unsigned cells_gated() const;
  [[nodiscard]] unsigned cells_failed() const;
};

struct SweepResult {
  std::vector<SectionResult> sections;

  [[nodiscard]] unsigned cells_gated() const;
  [[nodiscard]] unsigned cells_failed() const;
  [[nodiscard]] bool pass() const { return cells_failed() == 0; }
};

/// Run one section (exposed for tests and --section filtering).
[[nodiscard]] SectionResult run_section(const Section& section,
                                        par::ThreadPool& pool);

/// Run every section of the manifest. `progress`, when non-null, receives
/// one line per section as it completes.
[[nodiscard]] SweepResult run_sweep(const Manifest& manifest,
                                    par::ThreadPool& pool,
                                    std::ostream* progress = nullptr);

}  // namespace ksw::sweep
