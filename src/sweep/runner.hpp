// Executes a sweep manifest: every grid point of every section, comparing
// analytic predictions against replicated simulation.
//
// Determinism contract (inherited from sim::replicate_*): each replicate's
// seed depends only on (section seed, replicate index); replicates run on
// the shared thread pool but are merged and reduced in strict index order,
// so every number in a SweepResult — point estimates, CI half-widths, gate
// verdicts — is bit-identical for a fixed manifest at any thread count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/span.hpp"
#include "par/thread_pool.hpp"
#include "sweep/manifest.hpp"

namespace ksw::sweep {

/// One compared quantity (a row cell pair in the generated tables).
struct Cell {
  std::string metric;     ///< e.g. "E[w]", "stage 3 E[w]", "n=6 Var[total]"
  double analytic = 0.0;  ///< model prediction
  double simulated = 0.0; ///< merged-replicate point estimate
  double ci_half = 0.0;   ///< CI half-width at the section's ci_level
  double rel_error = 0.0; ///< |sim - analytic| / max(|analytic|, 1e-12)
  bool mean_like = true;  ///< gates with mean_rel (else var_rel)
  bool gated = true;      ///< informational cells carry no pass/fail
  bool pass = true;

  /// Evaluate the agreement gate against `tol` (sets rel_error and pass).
  void judge(const Tolerance& tol);
};

/// All comparisons for one grid point.
struct PointResult {
  Point point;
  std::string label;
  std::uint64_t samples = 0;  ///< messages/packets measured (all replicates)
  std::vector<Cell> cells;
  /// A degraded point failed to compute (a replicate threw, the analytic
  /// model hit a numeric error) or blew through the soft per-point
  /// deadline. Degraded points keep whatever cells they produced, carry
  /// the reason, are excluded from gate counting when empty, and are never
  /// checkpointed — a resumed run retries them. A run with degraded points
  /// exits with ksw::kExitDegraded rather than failing the gates.
  bool degraded = false;
  std::string degrade_reason;

  [[nodiscard]] bool pass() const;
};

struct SectionResult {
  Section section;
  std::vector<PointResult> points;

  [[nodiscard]] unsigned cells_gated() const;
  [[nodiscard]] unsigned cells_failed() const;
  [[nodiscard]] unsigned points_degraded() const;
};

struct SweepResult {
  std::vector<SectionResult> sections;

  [[nodiscard]] unsigned cells_gated() const;
  [[nodiscard]] unsigned cells_failed() const;
  [[nodiscard]] unsigned points_degraded() const;
  [[nodiscard]] bool pass() const { return cells_failed() == 0; }
};

class Journal;

/// Resilience knobs for a sweep run. All default to off, reproducing the
/// historic run_sweep behavior exactly.
struct RunOptions {
  /// Checked between grid points and inside the replicate fan-out; when it
  /// fires, run_sweep throws ksw::Error(kInterrupted) (it does NOT degrade
  /// the in-flight point — interruption is the caller's signal, not a
  /// model failure).
  const par::CancelToken* cancel = nullptr;
  /// When set, completed points are read from / recorded to the journal:
  /// already-journaled points are skipped wholesale (their recorded result
  /// is reused bit-exactly) and each newly completed clean point is
  /// persisted before the next one starts. Resume is replicate-granular:
  /// inside a point, each completed replicate is persisted as a shard and
  /// replayed on resume, so a run killed mid-replicate only recomputes the
  /// replicates that were in flight (see sweep/checkpoint.hpp).
  Journal* journal = nullptr;
  /// Soft per-point wall-clock deadline in milliseconds (0 = off). Points
  /// are never aborted mid-flight — that would make the emitted numbers
  /// depend on machine speed; instead a point that finishes over deadline
  /// is marked degraded (and not journaled) while the sweep continues.
  std::int64_t point_timeout_ms = 0;
  /// One line per section as it completes, when non-null.
  std::ostream* progress = nullptr;
  /// Span sink (not owned; nullptr = tracing off). Each section and each
  /// grid point emits a span; point trace ids are derived from
  /// `trace_key` + section id + point index, so they are *stable across
  /// runs of the same manifest* — an interrupted run and its --resume
  /// continuation emit stitchable traces, with replayed-from-journal
  /// points labelled source=journal.
  obs::Tracer* tracer = nullptr;
  /// Stable trace-id salt; use the checkpoint journal's manifest
  /// fingerprint (sweep::manifest_fingerprint).
  std::string trace_key;
};

/// Run one section (exposed for tests and --section filtering). A point
/// whose computation throws (other than kInterrupted) is marked degraded
/// and the remaining points still run.
[[nodiscard]] SectionResult run_section(const Section& section,
                                        par::ThreadPool& pool);

/// Run every section of the manifest with resilience options.
[[nodiscard]] SweepResult run_sweep(const Manifest& manifest,
                                    par::ThreadPool& pool,
                                    const RunOptions& options);

/// Back-compatible convenience overload (no cancellation, journal, or
/// deadline). `progress`, when non-null, receives one line per section as
/// it completes.
[[nodiscard]] SweepResult run_sweep(const Manifest& manifest,
                                    par::ThreadPool& pool,
                                    std::ostream* progress = nullptr);

}  // namespace ksw::sweep
