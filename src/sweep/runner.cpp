#include "sweep/runner.hpp"

#include <cmath>
#include <ostream>

#include "core/total_delay.hpp"
#include "sim/first_stage_sim.hpp"
#include "sim/replicate.hpp"
#include "stats/confidence.hpp"

namespace ksw::sweep {

void Cell::judge(const Tolerance& tol) {
  const double diff = std::abs(simulated - analytic);
  rel_error = diff / std::max(std::abs(analytic), 1e-12);
  if (!gated) {
    pass = true;
    return;
  }
  const double rel = mean_like ? tol.mean_rel : tol.var_rel;
  pass = diff <= tol.abs + rel * std::abs(analytic) + ci_half;
}

bool PointResult::pass() const {
  for (const Cell& cell : cells)
    if (cell.gated && !cell.pass) return false;
  return true;
}

unsigned SectionResult::cells_gated() const {
  unsigned n = 0;
  for (const PointResult& pt : points)
    for (const Cell& cell : pt.cells) n += cell.gated ? 1 : 0;
  return n;
}

unsigned SectionResult::cells_failed() const {
  unsigned n = 0;
  for (const PointResult& pt : points)
    for (const Cell& cell : pt.cells) n += (cell.gated && !cell.pass) ? 1 : 0;
  return n;
}

unsigned SweepResult::cells_gated() const {
  unsigned n = 0;
  for (const SectionResult& s : sections) n += s.cells_gated();
  return n;
}

unsigned SweepResult::cells_failed() const {
  unsigned n = 0;
  for (const SectionResult& s : sections) n += s.cells_failed();
  return n;
}

namespace {

/// The analytic queue model a grid point describes (mirrors the kswsim
/// analyze command's construction).
core::QueueSpec analytic_queue(const Point& pt) {
  const unsigned s = pt.s != 0 ? pt.s : pt.k;
  const sim::ServiceSpec service = sim::ServiceSpec::parse(pt.service);
  std::shared_ptr<const core::ArrivalModel> arrivals;
  if (pt.q > 0.0)
    arrivals = core::make_nonuniform_arrivals(pt.k, pt.p, pt.q, pt.bulk);
  else
    arrivals = core::make_bulk_arrivals(pt.k, s, pt.p, pt.bulk);
  return core::QueueSpec{std::move(arrivals), service.to_model()};
}

core::NetworkTrafficSpec analytic_traffic(const Point& pt) {
  core::NetworkTrafficSpec spec;
  spec.k = pt.k;
  spec.p = pt.p;
  spec.bulk = pt.bulk;
  spec.q = pt.q;
  spec.service = sim::ServiceSpec::parse(pt.service).to_model();
  return spec;
}

/// CI half-width over per-replicate scalar statistics.
double half_width(const std::vector<double>& samples, double level) {
  return stats::replicate_interval(samples, level).half_width;
}

Cell make_cell(std::string metric, double analytic, double simulated,
               double ci_half, bool mean_like, bool gated,
               const Tolerance& tol) {
  Cell cell;
  cell.metric = std::move(metric);
  cell.analytic = analytic;
  cell.simulated = simulated;
  cell.ci_half = ci_half;
  cell.mean_like = mean_like;
  cell.gated = gated;
  cell.judge(tol);
  return cell;
}

PointResult run_first_stage_point(const Section& section, const Point& pt,
                                  par::ThreadPool& pool) {
  sim::FirstStageConfig cfg;
  cfg.k = pt.k;
  cfg.s = pt.s != 0 ? pt.s : pt.k;
  cfg.p = pt.p;
  cfg.bulk = pt.bulk;
  cfg.q = pt.q;
  cfg.service = sim::ServiceSpec::parse(pt.service);
  cfg.warmup_cycles = section.budget.effective_warmup();
  cfg.measure_cycles = section.budget.measure_cycles;

  const unsigned replicates = section.budget.replicates;
  std::vector<sim::FirstStageResults> parts(replicates);
  par::parallel_for_chunks(pool, replicates, [&](std::size_t i) {
    sim::FirstStageConfig rep = cfg;
    rep.seed = sim::replicate_seed(section.budget.seed,
                                   static_cast<unsigned>(i));
    parts[i] = sim::run_first_stage(rep);
  });
  sim::FirstStageResults merged = parts[0];
  std::vector<double> means(replicates), vars(replicates);
  means[0] = parts[0].waiting.mean();
  vars[0] = parts[0].waiting.variance();
  for (unsigned i = 1; i < replicates; ++i) {
    merged.merge(parts[i]);
    means[i] = parts[i].waiting.mean();
    vars[i] = parts[i].waiting.variance();
  }

  const core::WaitingMoments exact =
      core::FirstStage(analytic_queue(pt)).moments();
  const double level = section.budget.ci_level;

  PointResult result;
  result.point = pt;
  result.label = pt.label();
  result.samples = merged.messages;
  result.cells.push_back(make_cell("E[w]", exact.mean, merged.waiting.mean(),
                                   half_width(means, level), true, true,
                                   section.tol));
  result.cells.push_back(make_cell("Var[w]", exact.variance,
                                   merged.waiting.variance(),
                                   half_width(vars, level), false, true,
                                   section.tol));
  return result;
}

/// Shared network-simulation scaffolding for the two network section kinds:
/// replicate, merge in index order, and hand per-replicate parts back for
/// CI extraction.
struct NetworkRun {
  sim::NetworkResults merged;
  std::vector<sim::NetworkResults> parts;
};

NetworkRun run_network_replicates(const Section& section, const Point& pt,
                                  par::ThreadPool& pool) {
  sim::NetworkConfig cfg;
  cfg.k = pt.k;
  cfg.stages = section.stages;
  cfg.p = pt.p;
  cfg.bulk = pt.bulk;
  cfg.q = pt.q;
  cfg.service = sim::ServiceSpec::parse(pt.service);
  cfg.warmup_cycles = section.budget.effective_warmup();
  cfg.measure_cycles = section.budget.measure_cycles;
  if (section.kind == SectionKind::kTotalDelay)
    cfg.total_checkpoints = section.checkpoints;

  NetworkRun run;
  run.parts.resize(section.budget.replicates);
  par::parallel_for_chunks(
      pool, section.budget.replicates, [&](std::size_t i) {
        sim::NetworkConfig rep = cfg;
        rep.seed = sim::replicate_seed(section.budget.seed,
                                       static_cast<unsigned>(i));
        run.parts[i] = sim::run_network(rep);
      });
  run.merged = run.parts[0];
  for (std::size_t i = 1; i < run.parts.size(); ++i)
    run.merged.merge(run.parts[i]);
  return run;
}

PointResult run_stage_convergence_point(const Section& section,
                                        const Point& pt,
                                        par::ThreadPool& pool) {
  const NetworkRun run = run_network_replicates(section, pt, pool);
  const core::LaterStages ls(analytic_traffic(pt));
  const double level = section.budget.ci_level;

  PointResult result;
  result.point = pt;
  result.label = pt.label();
  result.samples = run.merged.packets_delivered;
  std::vector<double> samples(run.parts.size());
  for (unsigned stage = 1; stage <= section.stages; ++stage) {
    for (std::size_t i = 0; i < run.parts.size(); ++i)
      samples[i] = run.parts[i].stage_wait[stage - 1].mean();
    result.cells.push_back(make_cell(
        "stage " + std::to_string(stage) + " E[w]", ls.mean_at_stage(stage),
        run.merged.stage_wait[stage - 1].mean(), half_width(samples, level),
        true, true, section.tol));
  }
  // Informational: the eq. 11 spatial limit next to the deepest simulated
  // stage (the sim value keeps converging toward it as stages grow).
  result.cells.push_back(make_cell(
      "limit E[w] (eq. 11)", ls.mean_limit(),
      run.merged.stage_wait[section.stages - 1].mean(), 0.0, true, false,
      section.tol));
  return result;
}

PointResult run_total_delay_point(const Section& section, const Point& pt,
                                  par::ThreadPool& pool) {
  const NetworkRun run = run_network_replicates(section, pt, pool);
  const core::LaterStages ls(analytic_traffic(pt));
  const double level = section.budget.ci_level;

  PointResult result;
  result.point = pt;
  result.label = pt.label();
  result.samples = run.merged.packets_delivered;
  std::vector<double> samples(run.parts.size());
  for (std::size_t c = 0; c < section.checkpoints.size(); ++c) {
    const unsigned n = section.checkpoints[c];
    const core::TotalDelay td(ls, n);
    const std::string prefix = "n=" + std::to_string(n) + " ";

    for (std::size_t i = 0; i < run.parts.size(); ++i)
      samples[i] = run.parts[i].total_wait[c].mean();
    result.cells.push_back(make_cell(
        prefix + "E[total]", td.mean_total(), run.merged.total_wait[c].mean(),
        half_width(samples, level), true, true, section.tol));

    for (std::size_t i = 0; i < run.parts.size(); ++i)
      samples[i] = run.parts[i].total_wait[c].variance();
    result.cells.push_back(make_cell(prefix + "Var[total]",
                                     td.variance_total(),
                                     run.merged.total_wait[c].variance(),
                                     half_width(samples, level), false, true,
                                     section.tol));

    // Gamma-fit tail check (informational: the empirical quantile is
    // integer-valued, so a pass/fail gate would flap on the rounding).
    result.cells.push_back(make_cell(
        prefix + "p95", td.gamma_approximation().quantile(0.95),
        static_cast<double>(run.merged.total_wait[c].quantile(0.95)), 0.0,
        true, false, section.tol));
  }
  return result;
}

}  // namespace

SectionResult run_section(const Section& section, par::ThreadPool& pool) {
  SectionResult result;
  result.section = section;
  for (const Point& pt : section.points) {
    switch (section.kind) {
      case SectionKind::kFirstStage:
        result.points.push_back(run_first_stage_point(section, pt, pool));
        break;
      case SectionKind::kStageConvergence:
        result.points.push_back(
            run_stage_convergence_point(section, pt, pool));
        break;
      case SectionKind::kTotalDelay:
        result.points.push_back(run_total_delay_point(section, pt, pool));
        break;
    }
  }
  return result;
}

SweepResult run_sweep(const Manifest& manifest, par::ThreadPool& pool,
                      std::ostream* progress) {
  SweepResult result;
  for (std::size_t i = 0; i < manifest.sections.size(); ++i) {
    const Section& section = manifest.sections[i];
    result.sections.push_back(run_section(section, pool));
    if (progress != nullptr) {
      const SectionResult& done = result.sections.back();
      *progress << "[" << (i + 1) << "/" << manifest.sections.size() << "] "
                << section.id << ": " << done.points.size() << " points, "
                << done.cells_gated() << " gates, "
                << done.cells_failed() << " failed\n";
    }
  }
  return result;
}

}  // namespace ksw::sweep
