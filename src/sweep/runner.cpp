#include "sweep/runner.hpp"

#include <chrono>
#include <cmath>
#include <ostream>

#include "core/total_delay.hpp"
#include "fault/injection.hpp"
#include "sim/first_stage_sim.hpp"
#include "sim/replicate.hpp"
#include "stats/confidence.hpp"
#include "support/error.hpp"
#include "sweep/checkpoint.hpp"

namespace ksw::sweep {

void Cell::judge(const Tolerance& tol) {
  const double diff = std::abs(simulated - analytic);
  rel_error = diff / std::max(std::abs(analytic), 1e-12);
  if (!gated) {
    pass = true;
    return;
  }
  const double rel = mean_like ? tol.mean_rel : tol.var_rel;
  pass = diff <= tol.abs + rel * std::abs(analytic) + ci_half;
}

bool PointResult::pass() const {
  for (const Cell& cell : cells)
    if (cell.gated && !cell.pass) return false;
  return true;
}

unsigned SectionResult::cells_gated() const {
  unsigned n = 0;
  for (const PointResult& pt : points)
    for (const Cell& cell : pt.cells) n += cell.gated ? 1 : 0;
  return n;
}

unsigned SectionResult::cells_failed() const {
  unsigned n = 0;
  for (const PointResult& pt : points)
    for (const Cell& cell : pt.cells) n += (cell.gated && !cell.pass) ? 1 : 0;
  return n;
}

unsigned SectionResult::points_degraded() const {
  unsigned n = 0;
  for (const PointResult& pt : points) n += pt.degraded ? 1 : 0;
  return n;
}

unsigned SweepResult::cells_gated() const {
  unsigned n = 0;
  for (const SectionResult& s : sections) n += s.cells_gated();
  return n;
}

unsigned SweepResult::cells_failed() const {
  unsigned n = 0;
  for (const SectionResult& s : sections) n += s.cells_failed();
  return n;
}

unsigned SweepResult::points_degraded() const {
  unsigned n = 0;
  for (const SectionResult& s : sections) n += s.points_degraded();
  return n;
}

namespace {

/// The analytic queue model a grid point describes (mirrors the kswsim
/// analyze command's construction).
core::QueueSpec analytic_queue(const Point& pt) {
  const unsigned s = pt.s != 0 ? pt.s : pt.k;
  const sim::ServiceSpec service = sim::ServiceSpec::parse(pt.service);
  std::shared_ptr<const core::ArrivalModel> arrivals;
  if (pt.q > 0.0)
    arrivals = core::make_nonuniform_arrivals(pt.k, pt.p, pt.q, pt.bulk);
  else
    arrivals = core::make_bulk_arrivals(pt.k, s, pt.p, pt.bulk);
  return core::QueueSpec{std::move(arrivals), service.to_model()};
}

core::NetworkTrafficSpec analytic_traffic(const Point& pt) {
  core::NetworkTrafficSpec spec;
  spec.k = pt.k;
  spec.p = pt.p;
  spec.bulk = pt.bulk;
  spec.q = pt.q;
  spec.service = sim::ServiceSpec::parse(pt.service).to_model();
  return spec;
}

/// CI half-width over per-replicate scalar statistics.
double half_width(const std::vector<double>& samples, double level) {
  return stats::replicate_interval(samples, level).half_width;
}

Cell make_cell(std::string metric, double analytic, double simulated,
               double ci_half, bool mean_like, bool gated,
               const Tolerance& tol) {
  Cell cell;
  cell.metric = std::move(metric);
  cell.analytic = analytic;
  cell.simulated = simulated;
  cell.ci_half = ci_half;
  cell.mean_like = mean_like;
  cell.gated = gated;
  cell.judge(tol);
  return cell;
}

/// Per-point context threaded into the replicate fans: cancellation plus
/// the optional journal for replicate-shard reuse and recording. With a
/// journal attached, each completed replicate is persisted as a shard and
/// each already-sharded replicate is replayed instead of simulated — safe
/// because replicate streams are pure functions of (seed, replicate index)
/// and the merges are exact integer sums, so a resumed point is
/// bit-identical however its replicates were obtained.
struct PointCtx {
  const par::CancelToken* cancel = nullptr;
  Journal* journal = nullptr;
  const std::string* section_id = nullptr;
  std::size_t point_index = 0;

  [[nodiscard]] Journal::ShardKey shard_key(const std::string& run,
                                            std::size_t replicate) const {
    return Journal::ShardKey{*section_id, point_index, run, replicate};
  }
};

PointResult run_first_stage_point(const Section& section, const Point& pt,
                                  par::ThreadPool& pool,
                                  const PointCtx& ctx) {
  sim::FirstStageConfig cfg;
  cfg.k = pt.k;
  cfg.s = pt.s != 0 ? pt.s : pt.k;
  cfg.p = pt.p;
  cfg.bulk = pt.bulk;
  cfg.q = pt.q;
  cfg.service = sim::ServiceSpec::parse(pt.service);
  cfg.warmup_cycles = section.budget.effective_warmup();
  cfg.measure_cycles = section.budget.measure_cycles;

  const unsigned replicates = section.budget.replicates;
  std::vector<sim::FirstStageResults> parts(replicates);
  par::parallel_for_chunks(
      pool, replicates,
      [&](std::size_t i) {
        fault::maybe_fail("replicate.throw");
        fault::maybe_delay("replicate.slow");
        if (ctx.journal != nullptr) {
          if (auto shard =
                  ctx.journal->find_first_stage_shard(ctx.shard_key("fs", i))) {
            parts[i] = std::move(*shard);
            return;
          }
        }
        sim::FirstStageConfig rep = cfg;
        rep.seed = sim::replicate_seed(section.budget.seed,
                                       static_cast<unsigned>(i));
        parts[i] = sim::run_first_stage(rep);
        if (ctx.journal != nullptr)
          ctx.journal->record_shard(ctx.shard_key("fs", i), parts[i]);
      },
      ctx.cancel);
  sim::FirstStageResults merged = parts[0];
  std::vector<double> means(replicates), vars(replicates);
  means[0] = parts[0].waiting.mean();
  vars[0] = parts[0].waiting.variance();
  for (unsigned i = 1; i < replicates; ++i) {
    merged.merge(parts[i]);
    means[i] = parts[i].waiting.mean();
    vars[i] = parts[i].waiting.variance();
  }

  const core::WaitingMoments exact =
      core::FirstStage(analytic_queue(pt)).moments();
  const double level = section.budget.ci_level;

  PointResult result;
  result.point = pt;
  result.label = pt.label();
  result.samples = merged.messages;
  result.cells.push_back(make_cell("E[w]", exact.mean, merged.waiting.mean(),
                                   half_width(means, level), true, true,
                                   section.tol));
  result.cells.push_back(make_cell("Var[w]", exact.variance,
                                   merged.waiting.variance(),
                                   half_width(vars, level), false, true,
                                   section.tol));
  return result;
}

/// Shared network-simulation scaffolding for the two network section kinds:
/// replicate, merge in index order, and hand per-replicate parts back for
/// CI extraction.
struct NetworkRun {
  sim::NetworkResults merged;
  std::vector<sim::NetworkResults> parts;
};

/// Base NetworkConfig for a grid point; section-kind specifics (buffer
/// depth, flow scheme, checkpoints) are layered on by the caller.
sim::NetworkConfig network_config(const Section& section, const Point& pt) {
  sim::NetworkConfig cfg;
  cfg.k = pt.k;
  cfg.stages = section.stages;
  cfg.p = pt.p;
  cfg.bulk = pt.bulk;
  cfg.q = pt.q;
  cfg.hotspot = pt.hotspot;
  cfg.hotspot_target = pt.hotspot_target;
  cfg.service = sim::ServiceSpec::parse(pt.service);
  cfg.warmup_cycles = section.budget.effective_warmup();
  cfg.measure_cycles = section.budget.measure_cycles;
  if (section.kind == SectionKind::kTotalDelay)
    cfg.total_checkpoints = section.checkpoints;
  return cfg;
}

NetworkRun run_network_replicates(const sim::NetworkConfig& cfg,
                                  const RunBudget& budget,
                                  par::ThreadPool& pool, const PointCtx& ctx,
                                  const std::string& run_tag) {
  NetworkRun run;
  run.parts.resize(budget.replicates);
  par::parallel_for_chunks(
      pool, budget.replicates,
      [&](std::size_t i) {
        fault::maybe_fail("replicate.throw");
        fault::maybe_delay("replicate.slow");
        if (ctx.journal != nullptr) {
          if (auto shard =
                  ctx.journal->find_network_shard(ctx.shard_key(run_tag, i))) {
            run.parts[i] = std::move(*shard);
            return;
          }
        }
        sim::NetworkConfig rep = cfg;
        rep.seed = sim::replicate_seed(budget.seed,
                                       static_cast<unsigned>(i));
        run.parts[i] = sim::run_network(rep);
        if (ctx.journal != nullptr)
          ctx.journal->record_shard(ctx.shard_key(run_tag, i), run.parts[i]);
      },
      ctx.cancel);
  run.merged = run.parts[0];
  for (std::size_t i = 1; i < run.parts.size(); ++i)
    run.merged.merge(run.parts[i]);
  return run;
}

PointResult run_stage_convergence_point(const Section& section,
                                        const Point& pt,
                                        par::ThreadPool& pool,
                                        const PointCtx& ctx) {
  const NetworkRun run = run_network_replicates(network_config(section, pt),
                                                section.budget, pool, ctx,
                                                "net");
  const core::LaterStages ls(analytic_traffic(pt));
  const double level = section.budget.ci_level;

  PointResult result;
  result.point = pt;
  result.label = pt.label();
  result.samples = run.merged.packets_delivered;
  std::vector<double> samples(run.parts.size());
  for (unsigned stage = 1; stage <= section.stages; ++stage) {
    for (std::size_t i = 0; i < run.parts.size(); ++i)
      samples[i] = run.parts[i].stage_wait[stage - 1].mean();
    result.cells.push_back(make_cell(
        "stage " + std::to_string(stage) + " E[w]", ls.mean_at_stage(stage),
        run.merged.stage_wait[stage - 1].mean(), half_width(samples, level),
        true, true, section.tol));
  }
  // Informational: the eq. 11 spatial limit next to the deepest simulated
  // stage (the sim value keeps converging toward it as stages grow).
  result.cells.push_back(make_cell(
      "limit E[w] (eq. 11)", ls.mean_limit(),
      run.merged.stage_wait[section.stages - 1].mean(), 0.0, true, false,
      section.tol));
  return result;
}

PointResult run_total_delay_point(const Section& section, const Point& pt,
                                  par::ThreadPool& pool,
                                  const PointCtx& ctx) {
  const NetworkRun run = run_network_replicates(network_config(section, pt),
                                                section.budget, pool, ctx,
                                                "net");
  const core::LaterStages ls(analytic_traffic(pt));
  const double level = section.budget.ci_level;

  PointResult result;
  result.point = pt;
  result.label = pt.label();
  result.samples = run.merged.packets_delivered;
  std::vector<double> samples(run.parts.size());
  for (std::size_t c = 0; c < section.checkpoints.size(); ++c) {
    const unsigned n = section.checkpoints[c];
    const core::TotalDelay td(ls, n);
    const std::string prefix = "n=" + std::to_string(n) + " ";

    for (std::size_t i = 0; i < run.parts.size(); ++i)
      samples[i] = run.parts[i].total_wait[c].mean();
    result.cells.push_back(make_cell(
        prefix + "E[total]", td.mean_total(), run.merged.total_wait[c].mean(),
        half_width(samples, level), true, true, section.tol));

    for (std::size_t i = 0; i < run.parts.size(); ++i)
      samples[i] = run.parts[i].total_wait[c].variance();
    result.cells.push_back(make_cell(prefix + "Var[total]",
                                     td.variance_total(),
                                     run.merged.total_wait[c].variance(),
                                     half_width(samples, level), false, true,
                                     section.tol));

    // Gamma-fit tail check (informational: the empirical quantile is
    // integer-valued, so a pass/fail gate would flap on the rounding).
    result.cells.push_back(make_cell(
        prefix + "p95", td.gamma_approximation().quantile(0.95),
        static_cast<double>(run.merged.total_wait[c].quantile(0.95)), 0.0,
        true, false, section.tol));
  }
  return result;
}

/// Finite-buffer section: one infinite-queue oracle run plus one finite
/// run per buffer depth. Two cells per depth —
///   * "depth=D accept" — fraction of offered packets admitted at the
///     first stage (analytic target 1.0: deep enough buffers drop
///     nothing);
///   * "depth=D E[w last]" — last-stage waiting vs the infinite-queue
///     oracle *simulation* (not a formula, so hotspot points gate too);
/// both gated only at the deepest depth, so shallow rows document the
/// divergence while the gate proves convergence. When the traffic has an
/// analytic model (hotspot == 0) an extra gated cell pins the oracle
/// itself against eq. 12.
PointResult run_finite_buffer_point(const Section& section, const Point& pt,
                                    par::ThreadPool& pool,
                                    const PointCtx& ctx) {
  const sim::NetworkConfig base = network_config(section, pt);
  const NetworkRun oracle =
      run_network_replicates(base, section.budget, pool, ctx, "oracle");
  const double level = section.budget.ci_level;
  const unsigned last = section.stages - 1;

  PointResult result;
  result.point = pt;
  result.label = pt.label();
  result.samples = oracle.merged.packets_delivered;
  std::vector<double> samples(oracle.parts.size());

  if (pt.hotspot == 0.0) {
    const core::LaterStages ls(analytic_traffic(pt));
    for (std::size_t i = 0; i < oracle.parts.size(); ++i)
      samples[i] = oracle.parts[i].stage_wait[last].mean();
    result.cells.push_back(make_cell(
        "infinite E[w last] (eq. 12)", ls.mean_at_stage(section.stages),
        oracle.merged.stage_wait[last].mean(), half_width(samples, level),
        true, true, section.tol));
  }

  for (std::size_t d = 0; d < section.depths.size(); ++d) {
    const unsigned depth = section.depths[d];
    sim::NetworkConfig cfg = base;
    cfg.buffer_capacity = depth;
    cfg.flow = sim::parse_flow_control(section.flow);
    if (cfg.flow == sim::FlowControl::kCredit)
      cfg.credit_latency = section.credit_latency;
    const NetworkRun run = run_network_replicates(
        cfg, section.budget, pool, ctx, "depth=" + std::to_string(depth));
    const bool gate = d + 1 == section.depths.size();
    const std::string prefix = "depth=" + std::to_string(depth) + " ";

    const auto accept = [](const sim::NetworkResults& r) {
      const double offered =
          static_cast<double>(r.packets_injected + r.packets_dropped);
      return offered > 0.0
                 ? static_cast<double>(r.packets_injected) / offered
                 : 1.0;
    };
    for (std::size_t i = 0; i < run.parts.size(); ++i)
      samples[i] = accept(run.parts[i]);
    result.cells.push_back(make_cell(prefix + "accept", 1.0,
                                     accept(run.merged),
                                     half_width(samples, level), true, gate,
                                     section.tol));

    for (std::size_t i = 0; i < run.parts.size(); ++i)
      samples[i] = run.parts[i].stage_wait[last].mean();
    result.cells.push_back(make_cell(
        prefix + "E[w last]", oracle.merged.stage_wait[last].mean(),
        run.merged.stage_wait[last].mean(), half_width(samples, level), true,
        gate, section.tol));
  }
  return result;
}

PointResult run_point(const Section& section, const Point& pt,
                      par::ThreadPool& pool, const PointCtx& ctx) {
  switch (section.kind) {
    case SectionKind::kStageConvergence:
      return run_stage_convergence_point(section, pt, pool, ctx);
    case SectionKind::kTotalDelay:
      return run_total_delay_point(section, pt, pool, ctx);
    case SectionKind::kFiniteBuffer:
      return run_finite_buffer_point(section, pt, pool, ctx);
    case SectionKind::kFirstStage:
      break;
  }
  return run_first_stage_point(section, pt, pool, ctx);
}

/// Stable trace id for a grid point (or, with index npos, a section):
/// a pure function of (manifest fingerprint, section id, point index),
/// so re-runs and resumed runs key the same work to the same trace.
std::uint64_t point_trace_id(const RunOptions& options,
                             const std::string& section_id,
                             std::size_t index) {
  std::string key = options.trace_key + "/" + section_id;
  if (index != static_cast<std::size_t>(-1))
    key += "#" + std::to_string(index);
  const std::uint64_t id = obs::fnv1a64(key);
  return id != 0 ? id : 1;
}

SectionResult run_section_with(const Section& section, par::ThreadPool& pool,
                               const RunOptions& options) {
  SectionResult result;
  result.section = section;
  obs::Span section_span;
  if (options.tracer != nullptr) {
    section_span = obs::Span(
        options.tracer, "reproduce.section",
        point_trace_id(options, section.id, static_cast<std::size_t>(-1)));
    section_span.label("section", section.id);
  }
  for (std::size_t idx = 0; idx < section.points.size(); ++idx) {
    const Point& pt = section.points[idx];
    if (options.cancel != nullptr && options.cancel->requested())
      throw interrupted_error("sweep cancelled before point '" + pt.label() +
                              "' of section '" + section.id + "'");
    obs::Span point_span;
    if (options.tracer != nullptr) {
      point_span = obs::Span(options.tracer, "reproduce.point",
                             point_trace_id(options, section.id, idx));
      point_span.label("section", section.id);
      point_span.label("point", pt.label());
    }
    if (options.journal != nullptr) {
      if (const PointResult* done = options.journal->find(section.id, idx)) {
        point_span.label("source", "journal");
        result.points.push_back(*done);
        continue;
      }
    }

    const auto started = std::chrono::steady_clock::now();

    // Deterministic fault site: stretch this point's wall time so the soft
    // deadline and kill/resume paths can be exercised on a fast machine.
    fault::maybe_delay("point.slow");

    PointCtx ctx;
    ctx.cancel = options.cancel;
    ctx.journal = options.journal;
    ctx.section_id = &section.id;
    ctx.point_index = idx;

    PointResult point_result;
    try {
      point_result = run_point(section, pt, pool, ctx);
    } catch (const Error& e) {
      // Interruption is the caller's signal and IO failure (shard writes
      // run inside the point now) is environmental — neither is a model
      // failure, so neither degrades the point.
      if (e.kind() == ErrorKind::kInterrupted || e.kind() == ErrorKind::kIo)
        throw;
      point_result.point = pt;
      point_result.label = pt.label();
      point_result.degraded = true;
      point_result.degrade_reason = e.what();
    } catch (const std::exception& e) {
      point_result.point = pt;
      point_result.label = pt.label();
      point_result.degraded = true;
      point_result.degrade_reason = e.what();
    }

    if (!point_result.degraded && options.point_timeout_ms > 0) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - started)
              .count();
      if (elapsed > options.point_timeout_ms) {
        // The numbers are kept (the point did finish, and aborting
        // mid-flight would make results machine-speed dependent); the
        // point is only flagged and left out of the journal so a resumed
        // run retries it.
        point_result.degraded = true;
        point_result.degrade_reason =
            "exceeded soft point deadline (" + std::to_string(elapsed) +
            " ms > " + std::to_string(options.point_timeout_ms) + " ms)";
      }
    }

    point_span.label(
        "source", point_result.degraded ? "degraded" : "computed");
    if (options.journal != nullptr && !point_result.degraded)
      options.journal->record(section.id, idx, point_result);
    result.points.push_back(std::move(point_result));
  }
  return result;
}

}  // namespace

SectionResult run_section(const Section& section, par::ThreadPool& pool) {
  return run_section_with(section, pool, RunOptions{});
}

SweepResult run_sweep(const Manifest& manifest, par::ThreadPool& pool,
                      const RunOptions& options) {
  SweepResult result;
  for (std::size_t i = 0; i < manifest.sections.size(); ++i) {
    const Section& section = manifest.sections[i];
    result.sections.push_back(run_section_with(section, pool, options));
    if (options.progress != nullptr) {
      const SectionResult& done = result.sections.back();
      *options.progress << "[" << (i + 1) << "/" << manifest.sections.size()
                        << "] " << section.id << ": " << done.points.size()
                        << " points, " << done.cells_gated() << " gates, "
                        << done.cells_failed() << " failed";
      if (done.points_degraded() > 0)
        *options.progress << ", " << done.points_degraded() << " degraded";
      *options.progress << "\n";
    }
  }
  return result;
}

SweepResult run_sweep(const Manifest& manifest, par::ThreadPool& pool,
                      std::ostream* progress) {
  RunOptions options;
  options.progress = progress;
  return run_sweep(manifest, pool, options);
}

}  // namespace ksw::sweep
