// Per-grid-point checkpoint journal for resumable reproduction runs.
//
// The journal is a JSON-lines file: a header line identifying the schema
// ("ksw.checkpoint/v1") and the manifest fingerprint, followed by one line
// per *successfully* completed grid point. Degraded points are never
// recorded, so a resumed run retries them. Every update rewrites the whole
// journal through io::atomic_write_file (temp + fsync + rename), so the
// file on disk is always a complete, parseable snapshot — a kill at any
// instant leaves either the previous or the next state, never a torn one.
//
// Doubles are serialized as hexfloat strings ("0x1.8p+1"), not decimal:
// the journal must round-trip bit-exactly so a resumed run emits a book
// byte-identical to an uninterrupted one.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "sweep/runner.hpp"

namespace ksw::sweep {

/// Stable fingerprint of a manifest file's raw text (FNV-1a 64, hex).
/// Any edit to the manifest — even whitespace — invalidates a journal,
/// because grid indices and budgets may have shifted.
[[nodiscard]] std::string manifest_fingerprint(const std::string& raw_text);

/// The checkpoint journal. Keyed by (section id, point index within the
/// section's expanded grid) — the runner's iteration order is
/// deterministic, so the pair uniquely names a grid point.
class Journal {
 public:
  /// An empty journal that will be written to `path` on the first record.
  Journal(std::string path, std::string fingerprint);

  /// Load an existing journal, or start an empty one when `path` does not
  /// exist. Throws ksw::Error(kUsage) when the journal's fingerprint does
  /// not match `fingerprint` (the manifest changed since the interrupted
  /// run), and ksw::Error(kIo) when the file exists but cannot be parsed.
  [[nodiscard]] static Journal load_or_create(std::string path,
                                              std::string fingerprint);

  /// The completed result for a point, or nullptr if not recorded.
  [[nodiscard]] const PointResult* find(const std::string& section_id,
                                        std::size_t point_index) const;

  [[nodiscard]] bool has(const std::string& section_id,
                         std::size_t point_index) const {
    return find(section_id, point_index) != nullptr;
  }

  /// Record a successfully completed point and persist the whole journal
  /// atomically. Throws ksw::Error(kIo) on write failure.
  void record(const std::string& section_id, std::size_t point_index,
              const PointResult& result);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Delete the journal file (after a fully clean run). Missing file is
  /// not an error.
  static void remove_file(const std::string& path);

 private:
  struct Entry {
    std::string section_id;
    std::size_t point_index = 0;
    PointResult result;
  };

  [[nodiscard]] std::string serialize() const;

  std::string path_;
  std::string fingerprint_;
  std::vector<Entry> entries_;
};

}  // namespace ksw::sweep
