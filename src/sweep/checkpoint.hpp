// Checkpoint journal for resumable reproduction runs.
//
// The journal is a JSON-lines file: a header line identifying the schema
// ("ksw.checkpoint/v2") and the manifest fingerprint, followed by one line
// per *successfully* completed grid point and one line per completed
// *replicate shard* of the in-flight point. Degraded points are never
// recorded, so a resumed run retries them. Every update rewrites the whole
// journal through io::atomic_write_file (temp + fsync + rename), so the
// file on disk is always a complete, parseable snapshot — a kill at any
// instant leaves either the previous or the next state, never a torn one.
//
// Replicate shards are what make resume finer than grid-point granularity:
// each replicate's random stream is a counter-based Philox function of
// (section seed, replicate index, cycle, port) alone (DESIGN.md §8b), so
// a replicate killed mid-cycle can be recomputed from scratch in isolation
// while its finished siblings are replayed from their shards — the merge
// (exact integer sums, strict index order) cannot tell the difference, and
// the resumed book comes out byte-identical. Shards for a point are pruned
// the moment the point's own record lands, so the journal stays one point
// deep in shards. v1 journals (points only, no shards) still load.
//
// Doubles are serialized as hexfloat strings ("0x1.8p+1"), not decimal:
// the journal must round-trip bit-exactly so a resumed run emits a book
// byte-identical to an uninterrupted one. Shard payloads are exact integer
// state (stats::MomentTally::Raw power sums, histogram counts) and travel
// as decimal strings.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/first_stage_sim.hpp"
#include "sim/network.hpp"
#include "sweep/runner.hpp"

namespace ksw::sweep {

/// Stable fingerprint of a manifest file's raw text (FNV-1a 64, hex).
/// Any edit to the manifest — even whitespace — invalidates a journal,
/// because grid indices and budgets may have shifted.
[[nodiscard]] std::string manifest_fingerprint(const std::string& raw_text);

/// The checkpoint journal. Keyed by (section id, point index within the
/// section's expanded grid) — the runner's iteration order is
/// deterministic, so the pair uniquely names a grid point.
class Journal {
 public:
  /// An empty journal that will be written to `path` on the first record.
  Journal(std::string path, std::string fingerprint);

  /// Load an existing journal, or start an empty one when `path` does not
  /// exist. Throws ksw::Error(kUsage) when the journal's fingerprint does
  /// not match `fingerprint` (the manifest changed since the interrupted
  /// run), and ksw::Error(kIo) when the file exists but cannot be parsed.
  [[nodiscard]] static Journal load_or_create(std::string path,
                                              std::string fingerprint);

  /// The completed result for a point, or nullptr if not recorded.
  [[nodiscard]] const PointResult* find(const std::string& section_id,
                                        std::size_t point_index) const;

  [[nodiscard]] bool has(const std::string& section_id,
                         std::size_t point_index) const {
    return find(section_id, point_index) != nullptr;
  }

  /// Record a successfully completed point and persist the whole journal
  /// atomically. Prunes every replicate shard recorded for the point (the
  /// point-level result supersedes them). Throws ksw::Error(kIo) on write
  /// failure.
  void record(const std::string& section_id, std::size_t point_index,
              const PointResult& result);

  /// Names one replicate of one simulation run within a grid point. A
  /// point may run several independent replicate fans (the finite-buffer
  /// kind runs an infinite-queue oracle plus one fan per depth); `run`
  /// disambiguates them with a tag chosen by the runner.
  struct ShardKey {
    std::string section_id;
    std::size_t point_index = 0;
    std::string run;
    std::size_t replicate = 0;
  };

  /// True when `r` consists purely of exactly-serializable state (integer
  /// moment tallies, integer histograms, packet counters). Results
  /// carrying per-stage histograms, covariance, telemetry, or convergence
  /// traces are not shardable and are silently skipped — a resumed run
  /// just recomputes those replicates. Every config the sweep runner
  /// builds is shardable; the guard is against future section kinds.
  [[nodiscard]] static bool shardable(const sim::NetworkResults& r) noexcept;

  /// Record one completed replicate and persist atomically. Thread-safe:
  /// replicates complete concurrently on the worker pool. No-op when the
  /// results are not shardable().
  void record_shard(const ShardKey& key, const sim::NetworkResults& r);
  void record_shard(const ShardKey& key, const sim::FirstStageResults& r);

  /// The recorded replicate results, or nullopt. Returned by value:
  /// concurrent record_shard calls may grow the underlying storage.
  [[nodiscard]] std::optional<sim::NetworkResults> find_network_shard(
      const ShardKey& key) const;
  [[nodiscard]] std::optional<sim::FirstStageResults> find_first_stage_shard(
      const ShardKey& key) const;

  /// Total replicate shards currently held (tests).
  [[nodiscard]] std::size_t shard_count() const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Delete the journal file (after a fully clean run). Missing file is
  /// not an error.
  static void remove_file(const std::string& path);

 private:
  struct Entry {
    std::string section_id;
    std::size_t point_index = 0;
    PointResult result;
  };
  struct NetworkShard {
    ShardKey key;
    sim::NetworkResults results;
  };
  struct FirstStageShard {
    ShardKey key;
    sim::FirstStageResults results;
  };

  [[nodiscard]] std::string serialize() const;
  void prune_shards_locked(const std::string& section_id,
                           std::size_t point_index);

  std::string path_;
  std::string fingerprint_;
  std::vector<Entry> entries_;
  std::vector<NetworkShard> network_shards_;
  std::vector<FirstStageShard> first_stage_shards_;
  /// Guards shard storage and the persist step: point-level record/find
  /// run on the sweep thread, but shards land from pool workers. Held by
  /// unique_ptr so the journal stays movable.
  std::unique_ptr<std::mutex> mutex_ = std::make_unique<std::mutex>();
};

}  // namespace ksw::sweep
