// Renders sweep results into the committed reproduction book: one
// Markdown page + one CSV per section under the manifest's output_dir,
// plus the index (docs/REPRODUCTION.md).
//
// Every byte here must be a pure function of the SweepResult — no
// timestamps, hostnames, or wall-clock data — so regeneration is
// bit-identical across machines and thread counts, and `kswsim reproduce
// --check` can diff committed pages against a fresh run.
#pragma once

#include <string>
#include <vector>

#include "io/csv.hpp"
#include "sweep/runner.hpp"

namespace ksw::sweep {

/// One generated file, as a path (relative to the working directory)
/// plus its full content.
struct Artifact {
  std::string path;
  std::string content;
};

/// Markdown page for one section.
[[nodiscard]] std::string section_markdown(const SectionResult& result,
                                           const Manifest& manifest);

/// Flat CSV of every cell of one section.
[[nodiscard]] io::CsvWriter section_csv(const SectionResult& result);

/// The book index (REPRODUCTION.md): summary table with per-section gate
/// counts and links into output_dir.
[[nodiscard]] std::string index_markdown(const Manifest& manifest,
                                         const SweepResult& result);

/// All artifacts of a run: <output_dir>/<id>.md and .csv per section,
/// plus the index when `include_index` (omit it when only a subset of
/// sections was run).
[[nodiscard]] std::vector<Artifact> render_book(const Manifest& manifest,
                                                const SweepResult& result,
                                                bool include_index = true);

/// Write every artifact through io::atomic_write_file (temp + fsync +
/// rename, parent directories created), so a crash or kill mid-write
/// never leaves a truncated page in the book. Throws ksw::Error(kIo).
void write_artifacts(const std::vector<Artifact>& artifacts);

}  // namespace ksw::sweep
