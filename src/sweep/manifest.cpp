#include "sweep/manifest.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sim/service_spec.hpp"
#include "support/error.hpp"

namespace ksw::sweep {

const char* to_string(SectionKind kind) {
  switch (kind) {
    case SectionKind::kFirstStage:
      return "first_stage";
    case SectionKind::kStageConvergence:
      return "stage_convergence";
    case SectionKind::kTotalDelay:
      return "total_delay";
    case SectionKind::kFiniteBuffer:
      return "finite_buffer";
  }
  return "?";
}

std::string Point::label() const {
  std::ostringstream os;
  os << "k=" << k;
  if (s != 0 && s != k) os << " s=" << s;
  os << " p=" << p;
  if (bulk != 1) os << " b=" << bulk;
  if (q != 0.0) os << " q=" << q;
  if (hotspot != 0.0)
    os << " hot=" << hotspot << "@" << hotspot_target;
  if (service != "det:1") os << " " << service;
  return os.str();
}

namespace {

[[noreturn]] void fail(const std::string& where, const std::string& what) {
  throw usage_error("manifest: " + where + ": " + what);
}

/// Strict-schema guard: every key of `obj` must be in `allowed`.
void check_keys(const io::Json& obj,
                std::initializer_list<const char*> allowed,
                const std::string& where) {
  for (const auto& key : obj.keys()) {
    const bool known = std::any_of(
        allowed.begin(), allowed.end(),
        [&](const char* a) { return key == a; });
    if (!known) fail(where, "unknown key \"" + key + "\"");
  }
}

SectionKind parse_kind(const std::string& text, const std::string& where) {
  if (text == "first_stage") return SectionKind::kFirstStage;
  if (text == "stage_convergence") return SectionKind::kStageConvergence;
  if (text == "total_delay") return SectionKind::kTotalDelay;
  if (text == "finite_buffer") return SectionKind::kFiniteBuffer;
  fail(where, "unknown kind \"" + text +
                  "\" (expected first_stage|stage_convergence|total_delay|"
                  "finite_buffer)");
}

/// Merge budget/tolerance keys present in `obj` onto `budget`/`tol`.
void apply_settings(const io::Json& obj, const std::string& where,
                    RunBudget* budget, Tolerance* tol) {
  if (obj.contains("replicates")) {
    const std::int64_t r = obj.at("replicates").as_int();
    if (r < 2) fail(where, "replicates must be >= 2 (CI needs spread)");
    budget->replicates = static_cast<unsigned>(r);
  }
  if (obj.contains("measure_cycles")) {
    const std::int64_t c = obj.at("measure_cycles").as_int();
    if (c <= 0) fail(where, "measure_cycles must be positive");
    budget->measure_cycles = c;
  }
  if (obj.contains("warmup_cycles")) {
    const std::int64_t c = obj.at("warmup_cycles").as_int();
    if (c < 0) fail(where, "warmup_cycles must be >= 0");
    budget->warmup_cycles = c;
  }
  if (obj.contains("seed"))
    budget->seed = static_cast<std::uint64_t>(obj.at("seed").as_int());
  if (obj.contains("ci_level")) {
    const double level = obj.at("ci_level").as_double();
    if (!(level > 0.0 && level < 1.0))
      fail(where, "ci_level must be in (0,1)");
    budget->ci_level = level;
  }
  if (obj.contains("mean_rel_tol")) {
    tol->mean_rel = obj.at("mean_rel_tol").as_double();
    if (tol->mean_rel < 0.0) fail(where, "mean_rel_tol must be >= 0");
  }
  if (obj.contains("var_rel_tol")) {
    tol->var_rel = obj.at("var_rel_tol").as_double();
    if (tol->var_rel < 0.0) fail(where, "var_rel_tol must be >= 0");
  }
  if (obj.contains("abs_tol")) {
    tol->abs = obj.at("abs_tol").as_double();
    if (tol->abs < 0.0) fail(where, "abs_tol must be >= 0");
  }
}

constexpr std::initializer_list<const char*> kSettingKeys = {
    "replicates", "measure_cycles", "warmup_cycles", "seed",
    "ci_level",   "mean_rel_tol",   "var_rel_tol",   "abs_tol"};

/// Apply one named parameter to a point. The value is a JSON number for
/// the numeric keys and a string for "service".
void apply_param(Point* point, const std::string& key, const io::Json& value,
                 const std::string& where) {
  const auto as_count = [&](const char* what) {
    const std::int64_t v = value.as_int();
    if (v < 1) fail(where, std::string(what) + " must be >= 1");
    return static_cast<unsigned>(v);
  };
  if (key == "k") {
    point->k = as_count("k");
  } else if (key == "s") {
    point->s = as_count("s");
  } else if (key == "p") {
    point->p = value.as_double();
    if (!(point->p > 0.0 && point->p <= 1.0))
      fail(where, "p must be in (0,1]");
  } else if (key == "bulk") {
    point->bulk = as_count("bulk");
  } else if (key == "q") {
    point->q = value.as_double();
    if (!(point->q >= 0.0 && point->q < 1.0))
      fail(where, "q must be in [0,1)");
  } else if (key == "hotspot") {
    point->hotspot = value.as_double();
    if (!(point->hotspot >= 0.0 && point->hotspot < 1.0))
      fail(where, "hotspot must be in [0,1)");
  } else if (key == "hotspot_target") {
    const std::int64_t v = value.as_int();
    if (v < 0) fail(where, "hotspot_target must be >= 0");
    point->hotspot_target = static_cast<std::uint32_t>(v);
  } else if (key == "service") {
    point->service = value.as_string();
    try {
      (void)sim::ServiceSpec::parse(point->service);  // validate eagerly
    } catch (const std::invalid_argument& e) {
      fail(where, std::string("bad service spec: ") + e.what());
    }
  } else {
    fail(where, "unknown parameter \"" + key +
                    "\" (expected k, s, p, bulk, q, hotspot, "
                    "hotspot_target, or service)");
  }
}

/// Expand a grid block into concrete points: the Cartesian product of the
/// listed axes (later axes vary fastest), then any explicit points.
std::vector<Point> parse_grid(const io::Json& grid, const std::string& where) {
  check_keys(grid, {"axes", "points"}, where);
  std::vector<Point> out;

  if (grid.contains("axes")) {
    const io::Json& axes = grid.at("axes");
    if (!axes.is_object()) fail(where, "axes must be an object");
    const auto keys = axes.keys();
    for (const auto& key : keys)
      if (axes.at(key).size() == 0 || !axes.at(key).is_array())
        fail(where, "axis \"" + key + "\" must be a non-empty array");
    std::vector<Point> expanded = {Point{}};
    for (const auto& key : keys) {
      const io::Json& values = axes.at(key);
      std::vector<Point> next;
      next.reserve(expanded.size() * values.size());
      for (const Point& base : expanded) {
        for (std::size_t i = 0; i < values.size(); ++i) {
          Point pt = base;
          apply_param(&pt, key, values.at(i), where + ".axes." + key);
          next.push_back(pt);
        }
      }
      expanded = std::move(next);
    }
    out = std::move(expanded);
  }

  if (grid.contains("points")) {
    const io::Json& points = grid.at("points");
    if (!points.is_array()) fail(where, "points must be an array");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const io::Json& entry = points.at(i);
      const std::string pw =
          where + ".points[" + std::to_string(i) + "]";
      if (!entry.is_object()) fail(pw, "must be an object");
      Point pt;
      for (const auto& key : entry.keys())
        apply_param(&pt, key, entry.at(key), pw);
      out.push_back(pt);
    }
  }

  if (out.empty()) fail(where, "grid produced no points");
  for (std::size_t i = 0; i < out.size(); ++i)
    for (std::size_t j = i + 1; j < out.size(); ++j)
      if (out[i] == out[j])
        fail(where, "duplicate grid point: " + out[j].label());
  return out;
}

Section parse_section(const io::Json& doc, const Manifest& manifest,
                      std::size_t index) {
  const std::string where = "sections[" + std::to_string(index) + "]";
  if (!doc.is_object()) fail(where, "must be an object");
  std::initializer_list<const char*> keys = {
      "id",          "title",        "notes",          "kind",
      "stages",      "checkpoints",  "grid",           "replicates",
      "measure_cycles", "warmup_cycles", "seed",       "ci_level",
      "mean_rel_tol", "var_rel_tol", "abs_tol",        "depths",
      "flow",        "credit_latency"};
  check_keys(doc, keys, where);

  Section section;
  if (!doc.contains("id")) fail(where, "missing \"id\"");
  section.id = doc.at("id").as_string();
  if (section.id.empty() ||
      section.id.find_first_not_of(
          "abcdefghijklmnopqrstuvwxyz0123456789-") != std::string::npos)
    fail(where, "id must be non-empty [a-z0-9-]: \"" + section.id + "\"");
  if (!doc.contains("title")) fail(where, "missing \"title\"");
  section.title = doc.at("title").as_string();
  if (doc.contains("notes")) section.notes = doc.at("notes").as_string();
  if (!doc.contains("kind")) fail(where, "missing \"kind\"");
  section.kind = parse_kind(doc.at("kind").as_string(), where);

  section.budget = manifest.defaults;
  section.tol = manifest.default_tol;
  apply_settings(doc, where, &section.budget, &section.tol);

  if (doc.contains("stages")) {
    const std::int64_t n = doc.at("stages").as_int();
    if (n < 1) fail(where, "stages must be >= 1");
    section.stages = static_cast<unsigned>(n);
  }
  if (doc.contains("checkpoints")) {
    const io::Json& cps = doc.at("checkpoints");
    if (!cps.is_array() || cps.size() == 0)
      fail(where, "checkpoints must be a non-empty array");
    for (std::size_t i = 0; i < cps.size(); ++i) {
      const std::int64_t c = cps.at(i).as_int();
      if (c < 1) fail(where, "checkpoints must be >= 1");
      if (!section.checkpoints.empty() &&
          static_cast<unsigned>(c) <= section.checkpoints.back())
        fail(where, "checkpoints must be strictly increasing");
      section.checkpoints.push_back(static_cast<unsigned>(c));
    }
    if (section.checkpoints.back() > section.stages)
      fail(where, "checkpoint beyond the last stage");
  }

  if (doc.contains("depths")) {
    const io::Json& ds = doc.at("depths");
    if (!ds.is_array() || ds.size() == 0)
      fail(where, "depths must be a non-empty array");
    for (std::size_t i = 0; i < ds.size(); ++i) {
      const std::int64_t d = ds.at(i).as_int();
      if (d < 1) fail(where, "depths must be >= 1");
      if (!section.depths.empty() &&
          static_cast<unsigned>(d) <= section.depths.back())
        fail(where, "depths must be strictly increasing");
      section.depths.push_back(static_cast<unsigned>(d));
    }
  }
  if (doc.contains("flow")) {
    section.flow = doc.at("flow").as_string();
    if (section.flow != "vct" && section.flow != "saf" &&
        section.flow != "credit")
      fail(where, "flow must be vct, saf, or credit");
  }
  if (doc.contains("credit_latency")) {
    const std::int64_t lat = doc.at("credit_latency").as_int();
    if (lat < 1) fail(where, "credit_latency must be >= 1");
    section.credit_latency = static_cast<unsigned>(lat);
    if (section.flow != "credit")
      fail(where, "credit_latency is only meaningful with flow=credit");
  }
  if (section.kind == SectionKind::kFiniteBuffer) {
    if (section.depths.empty())
      fail(where, "finite_buffer sections require \"depths\"");
    if (!section.checkpoints.empty())
      fail(where, "finite_buffer sections take no \"checkpoints\"");
  } else if (!section.depths.empty() || doc.contains("flow") ||
             doc.contains("credit_latency")) {
    fail(where,
         "depths/flow/credit_latency only apply to finite_buffer sections");
  }

  if (!doc.contains("grid")) fail(where, "missing \"grid\"");
  section.points = parse_grid(doc.at("grid"), where + ".grid");

  const bool network = section.kind != SectionKind::kFirstStage;
  for (const Point& pt : section.points) {
    if (network && pt.s != 0 && pt.s != pt.k)
      fail(where, "network sections require s == k (point " + pt.label() +
                      ")");
    if (pt.q > 0.0 && pt.s != 0 && pt.s != pt.k)
      fail(where, "favorite-output traffic requires s == k (point " +
                      pt.label() + ")");
    if (pt.hotspot > 0.0 && section.kind != SectionKind::kFiniteBuffer)
      fail(where, "hotspot traffic is only supported in finite_buffer "
                  "sections (point " + pt.label() + ")");
    if (network) {
      // hotspot_target names a destination port; the grid knows k and the
      // section knows stages, so the range check runs at parse time on
      // every point — even those with hotspot == 0.
      std::uint64_t ports = 1;
      for (unsigned i = 0; i < section.stages && ports <= 0xffffffffull; ++i)
        ports *= pt.k;
      if (pt.hotspot_target >= ports)
        fail(where, "hotspot_target must name a port < k^stages (point " +
                        pt.label() + ")");
    } else if (pt.hotspot_target != 0) {
      fail(where, "hotspot_target only applies to network sections (point " +
                      pt.label() + ")");
    }
  }
  if (section.kind == SectionKind::kTotalDelay && section.checkpoints.empty())
    section.checkpoints = {section.stages};
  return section;
}

}  // namespace

Manifest parse_manifest(const io::Json& doc) {
  if (!doc.is_object()) fail("document", "must be a JSON object");
  check_keys(doc,
             {"schema", "name", "title", "output_dir", "index_path",
              "defaults", "sections"},
             "document");
  if (!doc.contains("schema") || doc.at("schema").as_string() != "ksw.sweep/v1")
    fail("document", "missing or unsupported \"schema\" (want ksw.sweep/v1)");

  Manifest manifest;
  if (!doc.contains("name")) fail("document", "missing \"name\"");
  manifest.name = doc.at("name").as_string();
  if (doc.contains("title")) manifest.title = doc.at("title").as_string();
  if (manifest.title.empty()) manifest.title = manifest.name;
  if (doc.contains("output_dir"))
    manifest.output_dir = doc.at("output_dir").as_string();
  if (doc.contains("index_path"))
    manifest.index_path = doc.at("index_path").as_string();

  if (doc.contains("defaults")) {
    const io::Json& defaults = doc.at("defaults");
    check_keys(defaults, kSettingKeys, "defaults");
    apply_settings(defaults, "defaults", &manifest.defaults,
                   &manifest.default_tol);
  }

  if (!doc.contains("sections")) fail("document", "missing \"sections\"");
  const io::Json& sections = doc.at("sections");
  if (!sections.is_array() || sections.size() == 0)
    fail("document", "sections must be a non-empty array");
  for (std::size_t i = 0; i < sections.size(); ++i)
    manifest.sections.push_back(parse_section(sections.at(i), manifest, i));

  for (std::size_t i = 0; i < manifest.sections.size(); ++i)
    for (std::size_t j = i + 1; j < manifest.sections.size(); ++j)
      if (manifest.sections[i].id == manifest.sections[j].id)
        fail("document", "duplicate section id \"" +
                             manifest.sections[j].id + "\"");
  return manifest;
}

Manifest load_manifest(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file)
    throw io_error("manifest: cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_manifest(io::Json::parse(buffer.str()));
}

}  // namespace ksw::sweep
