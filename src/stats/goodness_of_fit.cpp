#include "stats/goodness_of_fit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/special_functions.hpp"

namespace ksw::stats {

double discretized_model_pmf(const GammaDistribution& model, std::int64_t w) {
  if (w < 0) return 0.0;
  const double hi = static_cast<double>(w) + 0.5;
  if (w == 0) return model.cdf(hi);
  return model.interval_probability(static_cast<double>(w) - 0.5, hi);
}

double total_variation_distance(const IntHistogram& empirical,
                                const GammaDistribution& model) {
  const std::int64_t wmax = empirical.max_value();
  double acc = 0.0;
  double model_mass = 0.0;
  for (std::int64_t w = 0; w <= wmax; ++w) {
    const double pm = discretized_model_pmf(model, w);
    model_mass += pm;
    acc += std::abs(empirical.pmf(w) - pm);
  }
  // Model mass beyond the empirical support counts fully toward the
  // distance (empirical pmf there is zero).
  acc += std::max(0.0, 1.0 - model_mass);
  return 0.5 * acc;
}

double binned_total_variation(const IntHistogram& empirical,
                              const GammaDistribution& model,
                              std::int64_t width) {
  if (width <= 0)
    throw std::invalid_argument("binned_total_variation: width <= 0");
  const std::int64_t wmax = empirical.max_value();
  double acc = 0.0;
  double model_mass = 0.0;
  for (std::int64_t lo = 0; lo <= wmax; lo += width) {
    double emp = 0.0, mod = 0.0;
    for (std::int64_t w = lo; w < lo + width; ++w) {
      emp += empirical.pmf(w);
      mod += discretized_model_pmf(model, w);
    }
    model_mass += mod;
    acc += std::abs(emp - mod);
  }
  acc += std::max(0.0, 1.0 - model_mass);
  return 0.5 * acc;
}

double ks_statistic(const IntHistogram& empirical,
                    const GammaDistribution& model) {
  const std::int64_t wmax = empirical.max_value();
  double worst = 0.0;
  for (std::int64_t w = 0; w <= wmax; ++w) {
    const double d = std::abs(empirical.cdf(w) -
                              model.cdf(static_cast<double>(w) + 0.5));
    worst = std::max(worst, d);
  }
  return worst;
}

double chi_square_statistic(const IntHistogram& empirical,
                            const GammaDistribution& model,
                            double min_expected) {
  const std::int64_t wmax = empirical.max_value();
  const double n = static_cast<double>(empirical.total());
  if (n == 0.0) return 0.0;
  double stat = 0.0;
  double pooled_obs = 0.0;
  double pooled_exp = 0.0;
  for (std::int64_t w = 0; w <= wmax; ++w) {
    pooled_obs += static_cast<double>(empirical.count(w));
    pooled_exp += n * discretized_model_pmf(model, w);
    if (pooled_exp >= min_expected) {
      const double d = pooled_obs - pooled_exp;
      stat += d * d / pooled_exp;
      pooled_obs = 0.0;
      pooled_exp = 0.0;
    }
  }
  // Close the final cell with the model's remaining tail mass.
  pooled_exp += n * regularized_gamma_q(model.shape(),
                                        (static_cast<double>(wmax) + 0.5) /
                                            model.scale());
  if (pooled_exp > 0.0) {
    const double d = pooled_obs - pooled_exp;
    stat += d * d / pooled_exp;
  }
  return stat;
}

}  // namespace ksw::stats
