#include "stats/histogram.hpp"

#include <algorithm>
#include <stdexcept>

namespace ksw::stats {

void IntHistogram::add(std::int64_t v) { add(v, 1); }

void IntHistogram::add(std::int64_t v, std::uint64_t count) {
  if (v < 0) throw std::invalid_argument("IntHistogram::add: negative value");
  const auto idx = static_cast<std::size_t>(v);
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  counts_[idx] += count;
  total_ += count;
}

void IntHistogram::merge(const IntHistogram& other) {
  if (other.counts_.size() > counts_.size())
    counts_.resize(other.counts_.size(), 0);
  for (std::size_t i = 0; i < other.counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  total_ += other.total_;
}

std::int64_t IntHistogram::max_value() const noexcept {
  for (std::size_t i = counts_.size(); i-- > 0;)
    if (counts_[i] != 0) return static_cast<std::int64_t>(i);
  return -1;
}

std::uint64_t IntHistogram::count(std::int64_t v) const noexcept {
  if (v < 0 || static_cast<std::size_t>(v) >= counts_.size()) return 0;
  return counts_[static_cast<std::size_t>(v)];
}

double IntHistogram::pmf(std::int64_t v) const noexcept {
  return total_ == 0 ? 0.0
                     : static_cast<double>(count(v)) /
                           static_cast<double>(total_);
}

double IntHistogram::cdf(std::int64_t v) const noexcept {
  if (total_ == 0 || v < 0) return 0.0;
  std::uint64_t acc = 0;
  const auto stop = std::min<std::size_t>(static_cast<std::size_t>(v) + 1,
                                          counts_.size());
  for (std::size_t i = 0; i < stop; ++i) acc += counts_[i];
  return static_cast<double>(acc) / static_cast<double>(total_);
}

std::int64_t IntHistogram::quantile(double p) const {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("IntHistogram::quantile: p outside [0,1]");
  if (total_ == 0) return -1;
  const double target = p * static_cast<double>(total_);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += counts_[i];
    if (static_cast<double>(acc) >= target && counts_[i] > 0)
      return static_cast<std::int64_t>(i);
    if (static_cast<double>(acc) >= target) {
      // Land on the next populated value.
      for (std::size_t j = i; j < counts_.size(); ++j)
        if (counts_[j] > 0) return static_cast<std::int64_t>(j);
    }
  }
  return max_value();
}

double IntHistogram::mean() const noexcept {
  if (total_ == 0) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i)
    s += static_cast<double>(i) * static_cast<double>(counts_[i]);
  return s / static_cast<double>(total_);
}

double IntHistogram::variance() const noexcept {
  if (total_ == 0) return 0.0;
  const double mu = mean();
  double s = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double d = static_cast<double>(i) - mu;
    s += d * d * static_cast<double>(counts_[i]);
  }
  return s / static_cast<double>(total_);
}

std::vector<double> IntHistogram::binned_pmf(std::int64_t width) const {
  if (width <= 0)
    throw std::invalid_argument("IntHistogram::binned_pmf: width <= 0");
  std::vector<double> out;
  if (total_ == 0) return out;
  const auto w = static_cast<std::size_t>(width);
  out.resize((counts_.size() + w - 1) / w, 0.0);
  for (std::size_t i = 0; i < counts_.size(); ++i)
    out[i / w] += static_cast<double>(counts_[i]);
  for (double& x : out) x /= static_cast<double>(total_);
  return out;
}

}  // namespace ksw::stats
