#include "stats/moment_tally.hpp"

#include <cmath>

namespace ksw::stats {

double MomentTally::stddev() const noexcept { return std::sqrt(variance()); }

double MomentTally::skewness() const noexcept {
  if (n_ < 2) return 0.0;
  const __int128_t vnum = var_numerator();
  if (vnum <= 0) return 0.0;
  const double n = static_cast<double>(n_);
  const double mu = static_cast<double>(s1_) / n;
  const double r2 = static_cast<double>(s2_) / n;  // E[x^2]
  const double r3 = static_cast<double>(s3_) / n;  // E[x^3]
  const double m2 = static_cast<double>(vnum) / (n * n);
  const double m3 = r3 - 3.0 * mu * r2 + 2.0 * mu * mu * mu;
  return m3 / std::pow(m2, 1.5);
}

}  // namespace ksw::stats
