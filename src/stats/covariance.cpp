#include "stats/covariance.hpp"

#include <cmath>
#include <stdexcept>

namespace ksw::stats {

void CovarianceAccumulator::add(double x, double y) noexcept {
  ++n_;
  const double n = static_cast<double>(n_);
  const double dx = x - mx_;
  const double dy = y - my_;
  mx_ += dx / n;
  my_ += dy / n;
  // After updating my_, (y - my_) uses the new mean — standard online form.
  sxy_ += dx * (y - my_);
  sxx_ += dx * (x - mx_);
  syy_ += dy * (y - my_);
}

void CovarianceAccumulator::merge(const CovarianceAccumulator& o) noexcept {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double n = na + nb;
  const double dx = o.mx_ - mx_;
  const double dy = o.my_ - my_;
  sxy_ += o.sxy_ + dx * dy * na * nb / n;
  sxx_ += o.sxx_ + dx * dx * na * nb / n;
  syy_ += o.syy_ + dy * dy * na * nb / n;
  mx_ += dx * nb / n;
  my_ += dy * nb / n;
  n_ += o.n_;
}

double CovarianceAccumulator::covariance() const noexcept {
  return n_ < 1 ? 0.0 : sxy_ / static_cast<double>(n_);
}

double CovarianceAccumulator::variance_x() const noexcept {
  return n_ < 1 ? 0.0 : sxx_ / static_cast<double>(n_);
}

double CovarianceAccumulator::variance_y() const noexcept {
  return n_ < 1 ? 0.0 : syy_ / static_cast<double>(n_);
}

double CovarianceAccumulator::correlation() const noexcept {
  const double denom = std::sqrt(sxx_ * syy_);
  return denom > 0.0 ? sxy_ / denom : 0.0;
}

CovarianceMatrix::CovarianceMatrix(std::size_t dims)
    : d_(dims), mean_(dims, 0.0), cov_(dims * (dims + 1) / 2, 0.0) {
  if (dims == 0) throw std::invalid_argument("CovarianceMatrix: dims == 0");
}

double& CovarianceMatrix::c(std::size_t i, std::size_t j) {
  if (i > j) std::swap(i, j);
  return cov_[i * d_ - i * (i + 1) / 2 + j];
}

const double& CovarianceMatrix::c(std::size_t i, std::size_t j) const {
  if (i > j) std::swap(i, j);
  return cov_[i * d_ - i * (i + 1) / 2 + j];
}

void CovarianceMatrix::add(const std::vector<double>& sample) {
  if (sample.size() != d_)
    throw std::invalid_argument("CovarianceMatrix::add: dimension mismatch");
  ++n_;
  const double n = static_cast<double>(n_);
  std::vector<double> delta(d_);
  for (std::size_t i = 0; i < d_; ++i) delta[i] = sample[i] - mean_[i];
  for (std::size_t i = 0; i < d_; ++i) mean_[i] += delta[i] / n;
  const double w = (n - 1.0) / n;
  for (std::size_t i = 0; i < d_; ++i)
    for (std::size_t j = i; j < d_; ++j) c(i, j) += w * delta[i] * delta[j];
}

void CovarianceMatrix::merge(const CovarianceMatrix& o) {
  if (o.d_ != d_)
    throw std::invalid_argument("CovarianceMatrix::merge: dimension mismatch");
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double n = na + nb;
  std::vector<double> delta(d_);
  for (std::size_t i = 0; i < d_; ++i) delta[i] = o.mean_[i] - mean_[i];
  const double w = na * nb / n;
  for (std::size_t i = 0; i < d_; ++i)
    for (std::size_t j = i; j < d_; ++j)
      c(i, j) += o.c(i, j) + w * delta[i] * delta[j];
  for (std::size_t i = 0; i < d_; ++i) mean_[i] += delta[i] * nb / n;
  n_ += o.n_;
}

double CovarianceMatrix::mean(std::size_t i) const {
  return n_ ? mean_.at(i) : 0.0;
}

double CovarianceMatrix::covariance(std::size_t i, std::size_t j) const {
  if (i >= d_ || j >= d_)
    throw std::out_of_range("CovarianceMatrix::covariance");
  return n_ < 1 ? 0.0 : c(i, j) / static_cast<double>(n_);
}

double CovarianceMatrix::correlation(std::size_t i, std::size_t j) const {
  const double denom =
      std::sqrt(covariance(i, i) * covariance(j, j));
  return denom > 0.0 ? covariance(i, j) / denom : 0.0;
}

}  // namespace ksw::stats
