#include "stats/gamma_distribution.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/special_functions.hpp"

namespace ksw::stats {

GammaDistribution::GammaDistribution(double shape, double scale)
    : shape_(shape), scale_(scale) {
  if (!(shape > 0.0) || !(scale > 0.0))
    throw std::invalid_argument("GammaDistribution: parameters must be > 0");
}

GammaDistribution GammaDistribution::from_moments(double mean,
                                                  double variance) {
  if (!(mean > 0.0) || !(variance > 0.0))
    throw std::invalid_argument(
        "GammaDistribution::from_moments: mean and variance must be > 0");
  return GammaDistribution(mean * mean / variance, variance / mean);
}

double GammaDistribution::pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) {
    if (shape_ < 1.0) return std::numeric_limits<double>::infinity();
    return shape_ == 1.0 ? 1.0 / scale_ : 0.0;
  }
  const double log_pdf = (shape_ - 1.0) * std::log(x) - x / scale_ -
                         log_gamma(shape_) - shape_ * std::log(scale_);
  return std::exp(log_pdf);
}

double GammaDistribution::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return regularized_gamma_p(shape_, x / scale_);
}

double GammaDistribution::quantile(double p) const {
  if (!(p > 0.0) || !(p < 1.0))
    throw std::invalid_argument("GammaDistribution::quantile: p not in (0,1)");
  // Bracket: start from mean +- k sigma, widen geometrically.
  double lo = 0.0;
  double hi = mean() + 10.0 * std::sqrt(variance());
  while (cdf(hi) < p) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < p)
      lo = mid;
    else
      hi = mid;
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

double GammaDistribution::interval_probability(double lo, double hi) const {
  if (hi <= lo) return 0.0;
  return cdf(hi) - cdf(lo);
}

}  // namespace ksw::stats
