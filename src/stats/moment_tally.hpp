// Exact integer moment accumulation for the simulator hot path.
//
// Every observation the cycle engines record — waiting times, sampled
// queue depths — is a small non-negative integer, so instead of Welford
// updates (one FP divide per add) the tally keeps exact power sums
//
//   n, s1 = sum x, s2 = sum x^2, s3 = sum x^3
//
// in 64/128-bit integers. Adds are a handful of integer ops, merges are
// plain additions (exactly associative and commutative, so replicate
// reduction order can never change a result), and the state serializes
// as decimal integers — no hexfloat needed for the checkpoint journal's
// bit-exact round-trip (see sweep/checkpoint.cpp).
//
// Range: exact while |x| <= 2^20 and n <= 2^40 (s3 then stays under
// 2^101); simulator waits and depths are orders of magnitude below both
// bounds. The read API mirrors stats::Accumulator so consumers are
// type-agnostic; derived central moments are evaluated in double from the
// exact sums, which for the small means involved is at least as accurate
// as the Welford path it replaces.
#pragma once

#include <cstdint>
#include <limits>

namespace ksw::stats {

class MomentTally {
 public:
  /// Exact serializable state (checkpoint journal shards).
  struct Raw {
    std::uint64_t n = 0;
    std::int64_t s1 = 0;
    __uint128_t s2 = 0;
    __int128_t s3 = 0;
    std::int64_t min = 0;
    std::int64_t max = 0;
  };

  MomentTally() = default;

  /// Add one integer observation.
  void add(std::int64_t x) noexcept {
    ++n_;
    s1_ += x;
    const std::int64_t sq = x * x;  // exact: |x| <= 2^20
    s2_ += static_cast<__uint128_t>(static_cast<std::uint64_t>(sq));
    s3_ += static_cast<__int128_t>(sq) * x;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Combine with another tally; exact, so order never matters.
  void merge(const MomentTally& other) noexcept {
    n_ += other.n_;
    s1_ += other.s1_;
    s2_ += other.s2_;
    s3_ += other.s3_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }

  [[nodiscard]] double mean() const noexcept {
    return n_ == 0 ? 0.0
                   : static_cast<double>(s1_) / static_cast<double>(n_);
  }

  /// Population variance (divide by n); the numerator n*s2 - s1^2 is
  /// evaluated exactly in 128-bit integers before the single divide.
  [[nodiscard]] double variance() const noexcept {
    if (n_ < 1) return 0.0;
    const double d = static_cast<double>(var_numerator());
    const double n = static_cast<double>(n_);
    return d / (n * n);
  }

  /// Unbiased sample variance (divide by n-1); 0 when n < 2.
  [[nodiscard]] double sample_variance() const noexcept {
    if (n_ < 2) return 0.0;
    const double d = static_cast<double>(var_numerator());
    return d / (static_cast<double>(n_) * static_cast<double>(n_ - 1));
  }

  [[nodiscard]] double stddev() const noexcept;

  /// Standardized skewness E[(x-mu)^3] / sigma^3; 0 when undefined.
  /// Central moments come from the exact sums, evaluated in double (the
  /// all-integer numerator n^2 s3 - 3n s1 s2 + 2 s1^3 can exceed 128
  /// bits for long merged streams).
  [[nodiscard]] double skewness() const noexcept;

  /// Smallest observation; +inf when empty (mirrors stats::Accumulator).
  [[nodiscard]] double min() const noexcept {
    return n_ == 0 ? std::numeric_limits<double>::infinity()
                   : static_cast<double>(min_);
  }

  /// Largest observation; -inf when empty.
  [[nodiscard]] double max() const noexcept {
    return n_ == 0 ? -std::numeric_limits<double>::infinity()
                   : static_cast<double>(max_);
  }

  /// Sum of all observations (exact; integer sums fit a double well
  /// within the documented range).
  [[nodiscard]] double sum() const noexcept {
    return static_cast<double>(s1_);
  }

  void reset() noexcept { *this = MomentTally{}; }

  [[nodiscard]] Raw raw() const noexcept {
    return {n_, s1_, s2_, s3_, min_, max_};
  }

  [[nodiscard]] static MomentTally from_raw(const Raw& r) noexcept {
    MomentTally t;
    t.n_ = r.n;
    t.s1_ = r.s1;
    t.s2_ = r.s2;
    t.s3_ = r.s3;
    if (r.n != 0) {
      t.min_ = r.min;
      t.max_ = r.max;
    }
    return t;
  }

 private:
  [[nodiscard]] __int128_t var_numerator() const noexcept {
    return static_cast<__int128_t>(n_) * static_cast<__int128_t>(s2_) -
           static_cast<__int128_t>(s1_) * static_cast<__int128_t>(s1_);
  }

  std::uint64_t n_ = 0;
  std::int64_t s1_ = 0;
  __uint128_t s2_ = 0;
  __int128_t s3_ = 0;
  std::int64_t min_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_ = std::numeric_limits<std::int64_t>::min();
};

}  // namespace ksw::stats
