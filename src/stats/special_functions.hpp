// Special functions needed for the gamma-distribution approximation of the
// total waiting time (paper Section V, Figs. 3-8).
//
// Self-contained implementations (Lanczos lgamma, series/continued-fraction
// regularized incomplete gamma) so results are reproducible across libm
// versions.
#pragma once

namespace ksw::stats {

/// log(Gamma(x)) for x > 0 (Lanczos approximation, ~1e-13 relative error).
[[nodiscard]] double log_gamma(double x);

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x)/Gamma(a),
/// for a > 0, x >= 0. P is the CDF of a Gamma(shape=a, scale=1) variate.
[[nodiscard]] double regularized_gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
[[nodiscard]] double regularized_gamma_q(double a, double x);

/// Error function computed via the incomplete gamma relation.
[[nodiscard]] double error_function(double x);

/// Regularized incomplete beta I_x(a, b) for a,b > 0 and x in [0,1].
/// Used for the Student-t CDF in confidence-interval construction.
[[nodiscard]] double regularized_beta(double a, double b, double x);

}  // namespace ksw::stats
