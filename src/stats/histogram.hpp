// Integer-valued and fixed-bin histograms.
//
// Waiting times in a clocked network are integers (cycles), so the primary
// histogram is an auto-growing integer tally; a binned view on top of it
// produces the coarse probability plots of the paper's Figs. 3-8.
#pragma once

#include <cstdint>
#include <vector>

namespace ksw::stats {

/// Exact tally of non-negative integer observations (waiting times in
/// cycles). Grows on demand; mergeable for parallel reduction.
class IntHistogram {
 public:
  /// Record one observation of value `v` (v >= 0).
  void add(std::int64_t v);

  /// Record `count` observations of value `v`.
  void add(std::int64_t v, std::uint64_t count);

  void merge(const IntHistogram& other);

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// Largest value observed so far; -1 when empty.
  [[nodiscard]] std::int64_t max_value() const noexcept;
  /// Raw count at value v (0 when never observed).
  [[nodiscard]] std::uint64_t count(std::int64_t v) const noexcept;
  /// Empirical probability mass at value v.
  [[nodiscard]] double pmf(std::int64_t v) const noexcept;
  /// Empirical P(X <= v).
  [[nodiscard]] double cdf(std::int64_t v) const noexcept;
  /// Smallest v with cdf(v) >= p (p in [0,1]); -1 when empty.
  [[nodiscard]] std::int64_t quantile(double p) const;
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double variance() const noexcept;

  /// Probability masses aggregated into consecutive bins of `width` values,
  /// covering [0, max_value()]. Used for coarse paper-style histograms.
  [[nodiscard]] std::vector<double> binned_pmf(std::int64_t width) const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace ksw::stats
