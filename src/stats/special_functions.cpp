#include "stats/special_functions.hpp"

#include <cmath>
#include <stdexcept>

namespace ksw::stats {

namespace {

// Lanczos coefficients (g = 7, n = 9), standard double-precision set.
constexpr double kLanczosG = 7.0;
constexpr double kLanczos[] = {
    0.99999999999980993,      676.5203681218851,     -1259.1392167224028,
    771.32342877765313,       -176.61502916214059,   12.507343278686905,
    -0.13857109526572012,     9.9843695780195716e-6, 1.5056327351493116e-7};

// Series expansion of P(a,x), converges quickly for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  // Large shapes (x close to a) need O(sqrt(a)) terms; be generous.
  for (int n = 0; n < 100000; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::abs(del) < std::abs(sum) * 1e-16)
      return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
  }
  throw std::runtime_error("gamma_p_series: no convergence");
}

// Lentz continued fraction for Q(a,x), converges quickly for x >= a + 1.
double gamma_q_cont_fraction(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-16)
      return std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
  }
  throw std::runtime_error("gamma_q_cont_fraction: no convergence");
}

}  // namespace

double log_gamma(double x) {
  if (!(x > 0.0)) throw std::domain_error("log_gamma: x must be positive");
  if (x < 0.5) {
    // Reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x).
    constexpr double kPi = 3.141592653589793238462643383279502884;
    return std::log(kPi / std::sin(kPi * x)) - log_gamma(1.0 - x);
  }
  const double z = x - 1.0;
  double a = kLanczos[0];
  const double t = z + kLanczosG + 0.5;
  for (int i = 1; i < 9; ++i) a += kLanczos[i] / (z + static_cast<double>(i));
  constexpr double kHalfLog2Pi = 0.91893853320467274178032973640562;
  return kHalfLog2Pi + (z + 0.5) * std::log(t) - t + std::log(a);
}

double regularized_gamma_p(double a, double x) {
  if (!(a > 0.0))
    throw std::domain_error("regularized_gamma_p: a must be positive");
  if (x < 0.0)
    throw std::domain_error("regularized_gamma_p: x must be non-negative");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cont_fraction(a, x);
}

double regularized_gamma_q(double a, double x) {
  if (!(a > 0.0))
    throw std::domain_error("regularized_gamma_q: a must be positive");
  if (x < 0.0)
    throw std::domain_error("regularized_gamma_q: x must be non-negative");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cont_fraction(a, x);
}

double error_function(double x) {
  const double p = regularized_gamma_p(0.5, x * x);
  return x >= 0.0 ? p : -p;
}

namespace {

// Lentz continued fraction for the incomplete beta (Numerical-Recipes form).
double beta_cont_fraction(double a, double b, double x) {
  constexpr double kTiny = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= 500; ++m) {
    const double dm = static_cast<double>(m);
    double aa = dm * (b - dm) * x / ((qam + 2.0 * dm) * (a + 2.0 * dm));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + dm) * (qab + dm) * x / ((a + 2.0 * dm) * (qap + 2.0 * dm));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-15) return h;
  }
  throw std::runtime_error("beta_cont_fraction: no convergence");
}

}  // namespace

double regularized_beta(double a, double b, double x) {
  if (!(a > 0.0) || !(b > 0.0))
    throw std::domain_error("regularized_beta: a,b must be positive");
  if (x < 0.0 || x > 1.0)
    throw std::domain_error("regularized_beta: x outside [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double front = std::exp(a * std::log(x) + b * std::log(1.0 - x) +
                                log_gamma(a + b) - log_gamma(a) -
                                log_gamma(b));
  if (x < (a + 1.0) / (a + b + 2.0)) return front * beta_cont_fraction(a, b, x) / a;
  return 1.0 - front * beta_cont_fraction(b, a, 1.0 - x) / b;
}

}  // namespace ksw::stats
