#include "stats/confidence.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/accumulator.hpp"
#include "stats/special_functions.hpp"

namespace ksw::stats {

namespace {

// Two-sided Student-t CDF: P(T <= t) with `dof` degrees of freedom.
double student_t_cdf(double t, double dof) {
  const double x = dof / (dof + t * t);
  const double tail = 0.5 * regularized_beta(dof / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

}  // namespace

double student_t_critical(std::size_t dof, double level) {
  if (dof < 1) throw std::invalid_argument("student_t_critical: dof < 1");
  if (!(level > 0.0) || !(level < 1.0))
    throw std::invalid_argument("student_t_critical: level not in (0,1)");
  const double target = 0.5 + level / 2.0;
  const double d = static_cast<double>(dof);
  double lo = 0.0;
  double hi = 2.0;
  while (student_t_cdf(hi, d) < target) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_cdf(mid, d) < target)
      lo = mid;
    else
      hi = mid;
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

ConfidenceInterval replicate_interval(std::span<const double> replicate_means,
                                      double level) {
  if (replicate_means.size() < 2)
    throw std::invalid_argument(
        "replicate_interval: need at least two replicates");
  Accumulator acc;
  for (double x : replicate_means) acc.add(x);
  const double r = static_cast<double>(replicate_means.size());
  const double se = std::sqrt(acc.sample_variance() / r);
  const double t = student_t_critical(replicate_means.size() - 1, level);
  return ConfidenceInterval{acc.mean(), t * se, replicate_means.size()};
}

ConfidenceInterval batch_means(std::span<const double> stream,
                               std::size_t num_batches, double level) {
  if (num_batches < 2)
    throw std::invalid_argument("batch_means: need at least two batches");
  const std::size_t batch_len = stream.size() / num_batches;
  if (batch_len == 0)
    throw std::invalid_argument("batch_means: stream shorter than batches");
  Accumulator acc;
  for (std::size_t b = 0; b < num_batches; ++b) {
    double s = 0.0;
    for (std::size_t i = 0; i < batch_len; ++i)
      s += stream[b * batch_len + i];
    acc.add(s / static_cast<double>(batch_len));
  }
  const double se =
      std::sqrt(acc.sample_variance() / static_cast<double>(num_batches));
  const double t = student_t_critical(num_batches - 1, level);
  return ConfidenceInterval{acc.mean(), t * se, num_batches};
}

}  // namespace ksw::stats
