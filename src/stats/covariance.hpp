// Streaming covariance / correlation between paired observations, and an
// NxN matrix form used to measure inter-stage waiting-time correlations
// (paper Table VI).
#pragma once

#include <cstdint>
#include <vector>

#include "stats/accumulator.hpp"

namespace ksw::stats {

/// Streaming covariance of paired observations (x_i, y_i), mergeable for
/// parallel reduction like `Accumulator`.
class CovarianceAccumulator {
 public:
  void add(double x, double y) noexcept;
  void merge(const CovarianceAccumulator& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  /// Population covariance (divide by n); 0 when n < 1.
  [[nodiscard]] double covariance() const noexcept;
  /// Pearson correlation coefficient; 0 when either variance vanishes.
  [[nodiscard]] double correlation() const noexcept;
  [[nodiscard]] double mean_x() const noexcept { return n_ ? mx_ : 0.0; }
  [[nodiscard]] double mean_y() const noexcept { return n_ ? my_ : 0.0; }
  [[nodiscard]] double variance_x() const noexcept;
  [[nodiscard]] double variance_y() const noexcept;

 private:
  std::uint64_t n_ = 0;
  double mx_ = 0.0, my_ = 0.0;
  double sxx_ = 0.0, syy_ = 0.0, sxy_ = 0.0;
};

/// Symmetric matrix of pairwise covariances among D simultaneously observed
/// variables (e.g., the waiting times of one message at each of D stages).
class CovarianceMatrix {
 public:
  explicit CovarianceMatrix(std::size_t dims);

  /// Add one joint observation; `sample.size()` must equal `dims()`.
  void add(const std::vector<double>& sample);
  void merge(const CovarianceMatrix& other);

  [[nodiscard]] std::size_t dims() const noexcept { return d_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean(std::size_t i) const;
  [[nodiscard]] double covariance(std::size_t i, std::size_t j) const;
  [[nodiscard]] double correlation(std::size_t i, std::size_t j) const;

 private:
  [[nodiscard]] double& c(std::size_t i, std::size_t j);
  [[nodiscard]] const double& c(std::size_t i, std::size_t j) const;

  std::size_t d_;
  std::uint64_t n_ = 0;
  std::vector<double> mean_;
  std::vector<double> cov_;  // packed upper triangle, row-major
};

}  // namespace ksw::stats
