// Confidence intervals for steady-state simulation output.
//
// Waiting times within one run are heavily autocorrelated, so a naive
// i.i.d. interval is far too narrow. We provide:
//   * replicate_interval — CI from R independent replicate means (the
//     method ksw::par::replicate feeds); and
//   * batch_means        — CI from non-overlapping batch means of a
//     single long run.
#pragma once

#include <cstddef>
#include <span>

namespace ksw::stats {

/// A two-sided confidence interval around a point estimate.
struct ConfidenceInterval {
  double point = 0.0;       ///< point estimate (grand mean)
  double half_width = 0.0;  ///< half-width at the requested level
  std::size_t samples = 0;  ///< number of (batch or replicate) means used

  [[nodiscard]] double lower() const noexcept { return point - half_width; }
  [[nodiscard]] double upper() const noexcept { return point + half_width; }
  [[nodiscard]] bool contains(double x) const noexcept {
    return x >= lower() && x <= upper();
  }
};

/// Two-sided Student-t critical value t_{dof, (1+level)/2}.
/// Exact for dof >= 1 via numeric inversion of the t CDF.
[[nodiscard]] double student_t_critical(std::size_t dof, double level);

/// CI of the mean from independent replicate means; `level` in (0,1),
/// e.g. 0.95. Requires at least two replicates.
[[nodiscard]] ConfidenceInterval replicate_interval(
    std::span<const double> replicate_means, double level = 0.95);

/// CI of the mean of a single autocorrelated stream using the method of
/// non-overlapping batch means with `num_batches` batches. Observations
/// beyond the last full batch are discarded. Requires at least two
/// batches' worth of data.
[[nodiscard]] ConfidenceInterval batch_means(std::span<const double> stream,
                                             std::size_t num_batches = 32,
                                             double level = 0.95);

}  // namespace ksw::stats
