// Streaming moment accumulators (Welford / Pébay update rules).
//
// The simulator feeds millions of per-packet waiting times through these;
// they must be numerically stable (naive sum-of-squares cancels badly when
// the mean is large, e.g. total delay through a 12-stage network at rho=0.8)
// and mergeable so parallel replicates can be combined deterministically.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ksw::stats {

/// Streaming accumulator for mean, variance, skewness, and extrema.
///
/// Uses Welford's algorithm extended to third central moments (Pébay 2008),
/// which is stable for long streams. `merge` combines two accumulators as if
/// their streams had been concatenated, enabling parallel reduction.
class Accumulator {
 public:
  Accumulator() = default;

  /// Add one observation.
  void add(double x) noexcept;

  /// Combine with another accumulator (order-independent up to FP rounding).
  void merge(const Accumulator& other) noexcept;

  /// Number of observations so far.
  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }

  /// Sample mean; 0 when empty.
  [[nodiscard]] double mean() const noexcept;

  /// Population variance (divide by n); 0 when n < 1.
  [[nodiscard]] double variance() const noexcept;

  /// Unbiased sample variance (divide by n-1); 0 when n < 2.
  [[nodiscard]] double sample_variance() const noexcept;

  /// Population standard deviation.
  [[nodiscard]] double stddev() const noexcept;

  /// Standardized skewness  E[(x-mu)^3] / sigma^3; 0 when undefined.
  [[nodiscard]] double skewness() const noexcept;

  /// Smallest observation; +inf when empty.
  [[nodiscard]] double min() const noexcept { return min_; }

  /// Largest observation; -inf when empty.
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Sum of all observations.
  [[nodiscard]] double sum() const noexcept;

  /// Reset to the empty state.
  void reset() noexcept { *this = Accumulator{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations
  double m3_ = 0.0;  // sum of cubed deviations
  double min_;
  double max_;

  friend class CovarianceAccumulator;
};

}  // namespace ksw::stats
