// Goodness-of-fit measures between an empirical integer histogram and a
// continuous model distribution (the gamma approximation of Section V).
//
// A waiting time of w cycles is compared against the model mass on
// (w - 1/2, w + 1/2] — the standard continuity-corrected discretization —
// except w = 0, which takes the model mass on (-inf, 1/2].
#pragma once

#include <cstdint>

#include "stats/gamma_distribution.hpp"
#include "stats/histogram.hpp"

namespace ksw::stats {

/// Total-variation distance: (1/2) sum_w |p_emp(w) - p_model(w)|.
/// 0 = perfect match, 1 = disjoint supports.
[[nodiscard]] double total_variation_distance(const IntHistogram& empirical,
                                              const GammaDistribution& model);

/// Total-variation distance over bins of `width` consecutive integers.
/// Lattice-like data (e.g. multi-packet messages, whose totals cluster on
/// residues of the message size) compares fairly against a continuous
/// model only after binning — this is what the paper's figures plot.
[[nodiscard]] double binned_total_variation(const IntHistogram& empirical,
                                            const GammaDistribution& model,
                                            std::int64_t width);

/// Kolmogorov-Smirnov statistic sup_w |F_emp(w) - F_model(w + 1/2)|.
[[nodiscard]] double ks_statistic(const IntHistogram& empirical,
                                  const GammaDistribution& model);

/// Pearson chi-square statistic over all values with model mass above
/// `min_expected / n`; adjacent low-mass tail cells are pooled.
[[nodiscard]] double chi_square_statistic(const IntHistogram& empirical,
                                          const GammaDistribution& model,
                                          double min_expected = 5.0);

/// Model probability assigned to integer value w under the continuity
/// correction described above.
[[nodiscard]] double discretized_model_pmf(const GammaDistribution& model,
                                           std::int64_t w);

}  // namespace ksw::stats
