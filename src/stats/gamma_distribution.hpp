// Gamma distribution, parameterized by (shape, scale) or fit by moment
// matching. The paper approximates the total waiting-time distribution of a
// multistage network by the gamma distribution whose mean and variance are
// the Section-V estimates (Figs. 3-8).
#pragma once

namespace ksw::stats {

/// Gamma(shape k, scale theta): pdf(x) = x^{k-1} e^{-x/theta} / (Gamma(k) theta^k).
class GammaDistribution {
 public:
  GammaDistribution(double shape, double scale);

  /// Distribution with the given mean and variance (moment matching):
  /// shape = mean^2/var, scale = var/mean. Both must be positive.
  static GammaDistribution from_moments(double mean, double variance);

  [[nodiscard]] double shape() const noexcept { return shape_; }
  [[nodiscard]] double scale() const noexcept { return scale_; }
  [[nodiscard]] double mean() const noexcept { return shape_ * scale_; }
  [[nodiscard]] double variance() const noexcept {
    return shape_ * scale_ * scale_;
  }

  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double cdf(double x) const;
  /// Inverse CDF by bracketed bisection/Newton; p in (0,1).
  [[nodiscard]] double quantile(double p) const;
  /// P(lo < X <= hi) — probability mass the density assigns to a bin.
  [[nodiscard]] double interval_probability(double lo, double hi) const;

 private:
  double shape_;
  double scale_;
};

}  // namespace ksw::stats
