#include "stats/accumulator.hpp"

#include <cmath>
#include <limits>

namespace ksw::stats {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

// Defined out of line so the in-class default member initializers can use
// infinities without dragging <limits> into the header for every client.
void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = kInf;
    max_ = -kInf;
  }
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  const double delta2 = delta * delta;

  // Pébay's pairwise update for the third central moment sum.
  m3_ += other.m3_ + delta2 * delta * na * nb * (na - nb) / (n * n) +
         3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  m2_ += other.m2_ + delta2 * na * nb / n;
  mean_ += delta * nb / n;
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double Accumulator::mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const noexcept {
  return n_ < 1 ? 0.0 : m2_ / static_cast<double>(n_);
}

double Accumulator::sample_variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::skewness() const noexcept {
  if (n_ < 2 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double Accumulator::sum() const noexcept {
  return mean_ * static_cast<double>(n_);
}

}  // namespace ksw::stats
