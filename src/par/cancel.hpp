// Cooperative cancellation.
//
// A CancelToken is a shared flag that long-running work polls at safe
// points (between replicate indices, between grid points). Requesting
// cancellation never tears state mid-computation: holders finish or skip
// whole units of work, flush their checkpoints, and unwind with
// ksw::Error(kInterrupted).
//
// The *global* token is wired to SIGINT/SIGTERM by
// install_signal_handlers() (called from kswsim's main). A second SIGINT
// restores the default disposition, so a stuck run can still be killed.
#pragma once

#include <atomic>

namespace ksw::par {

class CancelToken {
 public:
  /// Request cancellation. Async-signal-safe (a single atomic store).
  void request() noexcept { requested_.store(true, std::memory_order_release); }

  [[nodiscard]] bool requested() const noexcept {
    return requested_.load(std::memory_order_acquire);
  }

  /// Clear the flag (tests and REPL-style embedders).
  void reset() noexcept { requested_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> requested_{false};
};

/// Process-wide token the signal handlers target.
[[nodiscard]] CancelToken& global_cancel_token() noexcept;

/// Install SIGINT/SIGTERM handlers that request the global token.
/// Idempotent. The first signal requests cooperative shutdown; a second
/// one restores the default handler and re-raises (hard kill).
void install_signal_handlers() noexcept;

/// The last signal number delivered to the handlers (0 if none) — lets
/// the CLI report "interrupted by SIGINT" in the partial summary.
[[nodiscard]] int last_signal() noexcept;

}  // namespace ksw::par
