#include "par/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <utility>

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace ksw::par {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::attach_metrics(obs::Registry* registry) {
  if constexpr (!obs::kEnabled) {
    (void)registry;
    return;
  }
  if (registry == nullptr) {
    wait_timer_ = nullptr;
    run_timer_ = nullptr;
    task_counter_ = nullptr;
    return;
  }
  registry->gauge("pool.workers")
      .record_max(static_cast<double>(workers_.size()));
  wait_timer_ = &registry->timer("pool.task_wait");
  run_timer_ = &registry->timer("pool.task_run");
  task_counter_ = &registry->counter("pool.tasks");
}

void ThreadPool::submit(std::function<void()> task) {
  if constexpr (obs::kEnabled) {
    if (task_counter_ != nullptr) {
      task_counter_->inc();
      task = [this, enqueued = std::chrono::steady_clock::now(),
              inner = std::move(task)] {
        wait_timer_->add(std::chrono::steady_clock::now() - enqueued);
        obs::ScopedTimer run(*run_timer_);
        inner();
      };
    }
  }
  {
    std::lock_guard lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lock(mu_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

namespace {

/// Shared abort state for one parallel_for* call: the first error wins,
/// and its presence (or an external cancellation request) makes every
/// still-pending index a no-op.
struct AbortState {
  std::exception_ptr first_error = nullptr;
  std::mutex error_mu;
  std::atomic<bool> aborted{false};
  const CancelToken* cancel = nullptr;

  [[nodiscard]] bool should_skip() const noexcept {
    return aborted.load(std::memory_order_relaxed) ||
           (cancel != nullptr && cancel->requested());
  }

  void record(std::exception_ptr error) {
    std::lock_guard lock(error_mu);
    if (!first_error) first_error = std::move(error);
    aborted.store(true, std::memory_order_relaxed);
  }

  /// After the call drains: rethrow the first error, or surface a clean
  /// cancellation as a typed interruption.
  void finish() const {
    if (first_error) std::rethrow_exception(first_error);
    if (cancel != nullptr && cancel->requested())
      throw interrupted_error("parallel work cancelled");
  }
};

}  // namespace

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  const CancelToken* cancel) {
  if (count == 0) return;
  AbortState abort;
  abort.cancel = cancel;
  std::atomic<std::size_t> next{0};
  // One pool task per worker, each draining indices from a shared counter —
  // cheap dynamic load balancing without per-index task overhead.
  const std::size_t lanes = std::min(count, pool.thread_count());
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    pool.submit([&] {
      for (;;) {
        if (abort.should_skip()) return;
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          body(i);
        } catch (...) {
          abort.record(std::current_exception());
        }
      }
    });
  }
  pool.wait_idle();
  abort.finish();
}

void parallel_for_chunks(ThreadPool& pool, std::size_t count,
                         const std::function<void(std::size_t)>& body,
                         const CancelToken* cancel) {
  if (count == 0) return;
  AbortState abort;
  abort.cancel = cancel;
  const std::size_t chunks = std::min(count, pool.thread_count());
  for (std::size_t c = 0; c < chunks; ++c) {
    // Balanced split: chunk c covers [count*c/chunks, count*(c+1)/chunks),
    // so sizes differ by at most one.
    const std::size_t begin = count * c / chunks;
    const std::size_t end = count * (c + 1) / chunks;
    pool.submit([&, begin, end] {
      for (std::size_t i = begin; i < end; ++i) {
        if (abort.should_skip()) return;
        try {
          body(i);
        } catch (...) {
          abort.record(std::current_exception());
        }
      }
    });
  }
  pool.wait_idle();
  abort.finish();
}

}  // namespace ksw::par
