// Minimal fixed-size thread pool and deterministic parallel helpers.
//
// The simulator uses `parallel_for` to run independent Monte-Carlo
// replicates across cores. Determinism contract: the work function receives
// the task index, each task derives its randomness from that index (via
// rng::Xoshiro256::split), and results are merged in index order — so the
// outcome is bit-identical for a fixed seed regardless of thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "par/cancel.hpp"

namespace ksw::par {

/// Fixed pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Spawn `threads` workers (0 = hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueue a task; it will run on some worker.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Attach a metrics registry; subsequent tasks record queue wait time
  /// ("pool.task_wait"), execution time ("pool.task_run"), a task counter
  /// ("pool.tasks"), and a "pool.workers" gauge. Pass nullptr to detach.
  /// Call only while the pool is idle; the registry must outlive the last
  /// task submitted while attached. No-op when observability is compiled
  /// out (KSW_OBS_ENABLED=0).
  void attach_metrics(obs::Registry* registry);

 private:
  void worker_loop();

  obs::Timer* wait_timer_ = nullptr;
  obs::Timer* run_timer_ = nullptr;
  obs::Counter* task_counter_ = nullptr;

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Run body(i) for i in [0, count) across the pool; blocks until all done.
/// Indices are drained dynamically from a shared counter (good load
/// balancing for uneven task costs).
///
/// Failure semantics: the first exception thrown by any body is recorded
/// and rethrown after the call drains; once an error is recorded (or
/// `cancel` is requested) still-pending indices are *skipped* rather than
/// executed, so a failing or cancelled run aborts promptly instead of
/// burning the remaining grid. When `cancel` fires and no body threw,
/// ksw::Error(kInterrupted) is thrown.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  const CancelToken* cancel = nullptr);

/// Run body(i) for i in [0, count), statically partitioned into one
/// contiguous chunk per worker; each chunk is walked in ascending index
/// order. For equal-cost tasks (Monte-Carlo replicates) this trades
/// parallel_for's dynamic balancing for fewer queue round-trips, a
/// deterministic worker->index assignment, and per-worker locality of
/// consecutive indices. Per-index outputs are identical to parallel_for.
/// Failure/cancellation semantics as in parallel_for.
void parallel_for_chunks(ThreadPool& pool, std::size_t count,
                         const std::function<void(std::size_t)>& body,
                         const CancelToken* cancel = nullptr);

/// Convenience: run `count` independent jobs producing results of type T,
/// collected in index order into a vector (deterministic merge).
template <typename T, typename Fn>
std::vector<T> parallel_map(ThreadPool& pool, std::size_t count, Fn&& fn) {
  std::vector<T> out(count);
  parallel_for(pool, count, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace ksw::par
