#include "par/cancel.hpp"

#include <csignal>

namespace ksw::par {

namespace {

// Signal state lives in lock-free atomics: handlers may only touch
// async-signal-safe machinery.
std::atomic<int> g_last_signal{0};

extern "C" void ksw_signal_handler(int sig) {
  if (global_cancel_token().requested()) {
    // Second signal: give up on cooperative shutdown.
    std::signal(sig, SIG_DFL);
    std::raise(sig);
    return;
  }
  g_last_signal.store(sig, std::memory_order_relaxed);
  global_cancel_token().request();
}

}  // namespace

CancelToken& global_cancel_token() noexcept {
  static CancelToken token;
  return token;
}

void install_signal_handlers() noexcept {
  // Touch the token now so its magic-static guard never runs inside the
  // signal handler.
  (void)global_cancel_token();
  std::signal(SIGINT, ksw_signal_handler);
#ifdef SIGTERM
  std::signal(SIGTERM, ksw_signal_handler);
#endif
}

int last_signal() noexcept {
  return g_last_signal.load(std::memory_order_relaxed);
}

}  // namespace ksw::par
