// Extension — hot-spot traffic and tree saturation (Pfister-Norton 1985,
// the companion phenomenon in the RP3 design space; the paper's uniform /
// favorite-output models bracket it from below).
//
// With hot-spot fraction h, the queue feeding the hot memory module sees
// rate N*p*h + p*(1-h) and saturates for tiny h in a large network; the
// congestion then backs up tree-fashion through earlier stages. With
// finite buffers this throttles even cold traffic.
#include <iostream>

#include "bench_common.hpp"
#include "sim/network.hpp"
#include "tables/table.hpp"

namespace {

void sweep_hotspot(const ksw::bench::Options& opt) {
  constexpr unsigned kStages = 6;  // 64-port network
  ksw::tables::Table table(
      "Hot-spot sweep (64 ports, p=0.4, infinite buffers): mean wait by "
      "stage",
      {"h", "stage 1", "stage 2", "stage 4", "stage 6", "hot-queue load"});
  for (double h : {0.0, 0.01, 0.02, 0.05, 0.10}) {
    ksw::sim::NetworkConfig cfg;
    cfg.k = 2;
    cfg.stages = kStages;
    cfg.p = 0.4;
    cfg.hotspot = h;
    cfg.seed = opt.seed;
    cfg.warmup_cycles = opt.cycles(2'000);
    cfg.measure_cycles = opt.cycles(20'000);
    const auto r = ksw::sim::run_network(cfg);
    const double ports = 64.0;
    const double hot_load = cfg.p * (h * ports + (1.0 - h));
    table.begin_row(ksw::tables::format_number(h, 2))
        .add_number(r.stage_wait[0].mean(), 3)
        .add_number(r.stage_wait[1].mean(), 3)
        .add_number(r.stage_wait[3].mean(), 3)
        .add_number(r.stage_wait[5].mean(), 3)
        .add_number(hot_load, 3);
  }
  table.print(std::cout);
  std::cout << "\nhot-queue load > 1 means the hot module saturates: its "
               "backlog grows\nwithout bound (waits keep rising with "
               "simulation length).\n\n";
}

void finite_buffer_collapse(const ksw::bench::Options& opt) {
  ksw::tables::Table table(
      "Tree saturation with finite buffers (64 ports, p=0.4, h=0.05)",
      {"capacity", "delivered/cycle", "drop fraction", "cold stage-1 wait"});
  for (unsigned cap : {2u, 4u, 8u, 16u}) {
    ksw::sim::NetworkConfig cfg;
    cfg.k = 2;
    cfg.stages = 6;
    cfg.p = 0.4;
    cfg.hotspot = 0.05;
    cfg.buffer_capacity = cap;
    cfg.seed = opt.seed;
    cfg.warmup_cycles = opt.cycles(4'000);
    cfg.measure_cycles = opt.cycles(20'000);
    const auto r = ksw::sim::run_network(cfg);
    const double cycles = static_cast<double>(cfg.measure_cycles);
    const double drop =
        static_cast<double>(r.packets_dropped) /
        static_cast<double>(r.packets_injected + r.packets_dropped);
    table.begin_row(std::to_string(cap))
        .add_number(static_cast<double>(r.packets_delivered) / cycles, 2)
        .add_number(drop, 4)
        .add_number(r.stage_wait[0].mean(), 3);
  }
  table.print(std::cout);
  std::cout << "\nBigger buffers do NOT fix a saturated hot spot -- they "
               "deepen the\nblocked tree. This is why RP3 added combining "
               "networks.\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = ksw::bench::parse_options(argc, argv);
  sweep_hotspot(opt);
  finite_buffer_collapse(opt);
  return 0;
}
