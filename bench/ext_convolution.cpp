// Ablation (Section V design choice) — three estimators of the total
// waiting-time distribution, scored against simulation by binned
// total-variation distance:
//   * gamma       — gamma matched to the Section V mean/variance
//                   (what the paper uses in Figs. 3-8);
//   * iid conv    — n-fold convolution of the exact first-stage pmf
//                   ("stages identical and independent" taken literally);
//   * scaled conv — per-stage drift-corrected convolution.
#include <iostream>

#include "bench_common.hpp"
#include "core/total_distribution.hpp"
#include "sim/network.hpp"
#include "stats/goodness_of_fit.hpp"
#include "tables/table.hpp"

namespace {

double pmf_tv(const ksw::stats::IntHistogram& hist,
              const std::vector<double>& pmf) {
  const std::int64_t wmax = hist.max_value();
  double acc = 0.0, mass = 0.0;
  for (std::int64_t w = 0; w <= wmax; ++w) {
    const double model = static_cast<std::size_t>(w) < pmf.size()
                             ? pmf[static_cast<std::size_t>(w)]
                             : 0.0;
    mass += model;
    acc += std::abs(hist.pmf(w) - model);
  }
  acc += std::max(0.0, 1.0 - mass);
  return 0.5 * acc;
}

void run_case(double rho, const ksw::bench::Options& opt) {
  ksw::core::NetworkTrafficSpec spec;
  spec.k = 2;
  spec.p = rho;
  const ksw::core::LaterStages ls(spec);

  ksw::sim::NetworkConfig cfg;
  cfg.k = 2;
  cfg.stages = 12;
  cfg.p = rho;
  cfg.total_checkpoints = {3, 6, 9, 12};
  cfg.seed = opt.seed;
  cfg.warmup_cycles = opt.cycles(4'000);
  cfg.measure_cycles = opt.cycles(40'000);
  const auto r = ksw::sim::run_network(cfg);

  ksw::tables::Table table(
      "Total-distribution estimators at rho=" +
          ksw::tables::format_number(rho, 1) +
          " (k=2, m=1): TV distance to simulation",
      {"stages", "gamma", "iid conv", "scaled conv"});
  for (std::size_t i = 0; i < 4; ++i) {
    const unsigned n = 3 * (static_cast<unsigned>(i) + 1);
    const ksw::core::TotalDistribution dist(ls, n);
    const auto& hist = r.total_wait[i];
    table.begin_row(std::to_string(n))
        .add_number(ksw::stats::total_variation_distance(hist, dist.gamma()))
        .add_number(pmf_tv(hist, dist.iid_convolution(2048)))
        .add_number(pmf_tv(hist, dist.scaled_convolution(2048)));
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = ksw::bench::parse_options(argc, argv);
  for (double rho : {0.2, 0.5, 0.8}) run_case(rho, opt);
  std::cout << "The scaled convolution tracks the exact integer support; "
               "the gamma\ncarries the covariance correction. Both beat the "
               "naive IID convolution\nonce stage drift matters (higher "
               "rho, deeper networks).\n";
  return 0;
}
