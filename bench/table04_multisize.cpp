// Table IV — Waiting times and variances with two message sizes m1 = 4,
// m2 = 8; mixture weights (g1, g2) varying with rho = 0.5 (k = 2, q = 0).
// Exact first stage from Theorem 1; limits from the Section IV-C
// mean-size-with-exact-ratio method (eqs. 17/18).
#include <iostream>

#include "bench_common.hpp"
#include "core/later_stages.hpp"
#include "sim/network.hpp"
#include "tables/table.hpp"

namespace {

constexpr unsigned kStages = 8;

void run(const ksw::bench::Options& opt) {
  const double g1s[] = {0.875, 0.75, 0.5, 0.25};

  std::vector<std::string> headers = {"row"};
  for (double g1 : g1s) {
    headers.push_back("w (g1=" + ksw::tables::format_number(g1, 3) + ")");
    headers.push_back("v (g1=" + ksw::tables::format_number(g1, 3) + ")");
  }
  ksw::tables::Table table(
      "Table IV: waiting times and variances, m1=4, m2=8, g1 varying "
      "(rho=0.5, k=2, q=0)",
      headers);

  std::vector<ksw::sim::NetworkResults> results;
  std::vector<ksw::core::LaterStages> estimates;
  for (double g1 : g1s) {
    const double mbar = 4.0 * g1 + 8.0 * (1.0 - g1);
    const double p = 0.5 / mbar;
    const std::vector<ksw::core::MultiSizeService::Size> sizes = {
        {4, g1}, {8, 1.0 - g1}};

    ksw::sim::NetworkConfig cfg;
    cfg.k = 2;
    cfg.stages = kStages;
    cfg.p = p;
    cfg.service = ksw::sim::ServiceSpec::multi_size(sizes);
    cfg.seed = opt.seed;
    cfg.warmup_cycles = opt.cycles(8'000);
    cfg.measure_cycles = opt.cycles(120'000);
    results.push_back(ksw::sim::run_network(cfg));

    ksw::core::NetworkTrafficSpec spec;
    spec.k = 2;
    spec.p = p;
    spec.service = std::make_shared<ksw::core::MultiSizeService>(sizes);
    estimates.emplace_back(spec);
  }

  for (unsigned s = 0; s < kStages; ++s) {
    table.begin_row("stage " + std::to_string(s + 1));
    for (const auto& r : results)
      table.add_number(r.stage_wait[s].mean(), 3)
          .add_number(r.stage_wait[s].variance(), 3);
  }
  table.begin_row("ANALYSIS (Thm 1)");
  for (const auto& ls : estimates)
    table.add_number(ls.mean_first_stage(), 3)
        .add_number(ls.variance_first_stage(), 3);
  table.begin_row("ESTIMATE (eq 17/18)");
  for (const auto& ls : estimates)
    table.add_number(ls.mean_limit(), 3).add_number(ls.variance_limit(), 3);

  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  run(ksw::bench::parse_options(argc, argv));
  return 0;
}
