// Table III — Waiting times and variances, p and m varying with rho = 0.5
// (k = 2, q = 0). Constant message sizes m in {2, 4, 8, 16}; exact first
// stage from eqs. (8)/(9) and limits from eqs. (15)/(16).
#include <iostream>

#include "bench_common.hpp"
#include "core/closed_forms.hpp"
#include "core/later_stages.hpp"
#include "sim/network.hpp"
#include "tables/table.hpp"

namespace {

constexpr unsigned kStages = 8;

void run(const ksw::bench::Options& opt) {
  const unsigned sizes[] = {2, 4, 8, 16};

  std::vector<std::string> headers = {"row"};
  for (unsigned m : sizes) {
    headers.push_back("w (m=" + std::to_string(m) + ")");
    headers.push_back("v (m=" + std::to_string(m) + ")");
  }
  ksw::tables::Table table(
      "Table III: waiting times and variances, m varying with rho=0.5 "
      "(k=2, q=0)",
      headers);

  std::vector<ksw::sim::NetworkResults> results;
  std::vector<ksw::core::LaterStages> estimates;
  for (unsigned m : sizes) {
    const double p = 0.5 / static_cast<double>(m);
    ksw::sim::NetworkConfig cfg;
    cfg.k = 2;
    cfg.stages = kStages;
    cfg.p = p;
    cfg.service = ksw::sim::ServiceSpec::deterministic(m);
    cfg.seed = opt.seed;
    cfg.warmup_cycles = opt.cycles(8'000);
    cfg.measure_cycles = opt.cycles(120'000);
    results.push_back(ksw::sim::run_network(cfg));

    ksw::core::NetworkTrafficSpec spec;
    spec.k = 2;
    spec.p = p;
    spec.service = std::make_shared<ksw::core::DeterministicService>(m);
    estimates.emplace_back(spec);
  }

  for (unsigned s = 0; s < kStages; ++s) {
    table.begin_row("stage " + std::to_string(s + 1));
    for (const auto& r : results)
      table.add_number(r.stage_wait[s].mean(), 3)
          .add_number(r.stage_wait[s].variance(), 3);
  }
  table.begin_row("ANALYSIS (eq 8/9)");
  for (const auto& ls : estimates)
    table.add_number(ls.mean_first_stage(), 3)
        .add_number(ls.variance_first_stage(), 3);
  table.begin_row("ESTIMATE (eq 15/16)");
  for (const auto& ls : estimates)
    table.add_number(ls.mean_limit(), 3).add_number(ls.variance_limit(), 3);

  table.print(std::cout);
  std::cout << "\nPaper's ESTIMATE row for comparison: "
               "0.600/1.167  1.200/4.667  2.400/18.67  4.800/74.67\n";
}

}  // namespace

int main(int argc, char** argv) {
  run(ksw::bench::parse_options(argc, argv));
  return 0;
}
