// Extension (Section IV methodology) — Re-derive the interpolation
// constants from this repository's own simulator, exactly as the authors
// fitted theirs, and compare with the paper's values:
//   mean_coeff (eq. 11)      paper: 4/5
//   stage rate a (eq. 12)    paper: 2/5
//   var_lin/var_quad (eq 13) reconstruction: 1, 1
//   nonuniform q-slope       fitted (printed value illegible in the scan)
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/calibration.hpp"
#include "core/later_stages.hpp"
#include "sim/network.hpp"
#include "tables/table.hpp"

namespace {

ksw::sim::NetworkResults simulate(double rho, double q,
                                  const ksw::bench::Options& opt) {
  ksw::sim::NetworkConfig cfg;
  cfg.k = 2;
  cfg.stages = 8;
  cfg.p = rho;
  cfg.q = q;
  cfg.seed = opt.seed;
  cfg.warmup_cycles = opt.cycles(8'000);
  cfg.measure_cycles = opt.cycles(100'000);
  return ksw::sim::run_network(cfg);
}

std::vector<ksw::core::StageObservation> observations(
    const ksw::sim::NetworkResults& r) {
  std::vector<ksw::core::StageObservation> obs;
  for (unsigned s = 0; s < r.stage_wait.size(); ++s)
    obs.push_back({s + 1, r.stage_wait[s].mean(),
                   r.stage_wait[s].variance()});
  return obs;
}

void run(const ksw::bench::Options& opt) {
  // --- eq. 11 coefficient and eq. 12 rate at the paper's operating point.
  const auto r05 = simulate(0.5, 0.0, opt);
  const auto obs05 = observations(r05);
  const auto lim05 = ksw::core::limit_estimate(obs05, 2);

  ksw::core::NetworkTrafficSpec spec;
  spec.k = 2;
  spec.p = 0.5;
  const ksw::core::LaterStages ls(spec);
  const double w1 = ls.mean_first_stage();

  const double mean_coeff =
      ksw::core::fit_mean_coeff(w1, lim05.mean, 0.5, 2);
  const double stage_rate =
      ksw::core::fit_stage_rate(obs05, w1, lim05.mean);

  // --- eq. 13 coefficients across a rho sweep.
  std::vector<ksw::core::VarPoint> var_points;
  for (double rho : {0.2, 0.4, 0.6, 0.8}) {
    const auto r = simulate(rho, 0.0, opt);
    const auto lim = ksw::core::limit_estimate(observations(r), 2);
    ksw::core::NetworkTrafficSpec s2;
    s2.k = 2;
    s2.p = rho;
    const ksw::core::LaterStages ls2(s2);
    var_points.push_back({rho, ls2.variance_first_stage(), lim.variance});
  }
  const auto [var_lin, var_quad] = ksw::core::fit_var_coeffs(var_points, 2);

  // --- Section IV-D nonuniform slope.
  std::vector<ksw::core::SlopePoint> slope_points;
  for (double q : {0.25, 0.5, 0.75}) {
    const auto r = simulate(0.5, q, opt);
    const auto lim = ksw::core::limit_estimate(observations(r), 2);
    ksw::core::NetworkTrafficSpec sq;
    sq.k = 2;
    sq.p = 0.5;
    sq.q = q;
    const ksw::core::LaterStages lsq(sq);
    const double base =
        (1.0 + lsq.options().mean_coeff * 0.25) * lsq.mean_first_stage();
    slope_points.push_back({q, lim.mean / base});
  }
  const double q_slope = ksw::core::fit_linear_slope(slope_points);

  ksw::tables::Table table(
      "Section IV constants re-fitted from this simulator",
      {"constant", "fitted", "paper / default"});
  table.begin_row("mean_coeff (eq 11)").add_number(mean_coeff, 3).add_cell(
      "0.8 (= 4/5)");
  table.begin_row("stage rate a (eq 12)")
      .add_number(stage_rate, 3)
      .add_cell("0.4 (= 2/5)");
  table.begin_row("var_lin (eq 13)").add_number(var_lin, 3).add_cell("1.0");
  table.begin_row("var_quad (eq 13)").add_number(var_quad, 3).add_cell(
      "1.0");
  table.begin_row("nonuniform q-slope (IV-D)")
      .add_number(q_slope, 3)
      .add_cell("-0.45 (fitted default)");
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  run(ksw::bench::parse_options(argc, argv));
  return 0;
}
