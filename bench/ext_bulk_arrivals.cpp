// Extension (Section III-A-2) — Bulk arrivals at the first stage: exact
// analysis vs single-switch simulation as the batch size b grows at fixed
// traffic intensity.
#include <iostream>

#include "bench_common.hpp"
#include "core/closed_forms.hpp"
#include "core/first_stage.hpp"
#include "sim/first_stage_sim.hpp"
#include "tables/table.hpp"

namespace {

void run(const ksw::bench::Options& opt) {
  const double rho = 0.5;
  ksw::tables::Table table(
      "Bulk arrivals at the first stage (k=2, rho=0.5): analysis vs "
      "simulation",
      {"b", "sim mean", "exact mean", "sim var", "exact var",
       "P(w=0) sim", "P(w=0) exact"});

  for (unsigned b : {1u, 2u, 4u, 8u, 16u}) {
    const double p = rho / static_cast<double>(b);

    ksw::sim::FirstStageConfig cfg;
    cfg.p = p;
    cfg.bulk = b;
    cfg.seed = opt.seed;
    cfg.warmup_cycles = opt.cycles(5'000);
    cfg.measure_cycles = opt.cycles(400'000);
    const auto r = ksw::sim::run_first_stage(cfg);

    ksw::core::QueueSpec spec{
        std::shared_ptr<ksw::core::ArrivalModel>(
            ksw::core::make_bulk_arrivals(2, 2, p, b)),
        std::make_shared<ksw::core::DeterministicService>(1)};
    const ksw::core::FirstStage fs(spec);
    const auto exact = fs.moments();
    const auto dist = fs.distribution(4);

    table.begin_row(std::to_string(b))
        .add_number(r.waiting.mean(), 3)
        .add_number(exact.mean, 3)
        .add_number(r.waiting.variance(), 3)
        .add_number(exact.variance, 3)
        .add_number(r.histogram.pmf(0), 4)
        .add_number(dist[0], 4);
  }
  table.print(std::cout);
  std::cout << "\nAt fixed rho, batching inflates waiting roughly linearly "
               "in b (eq. III-A-2).\n";
}

}  // namespace

int main(int argc, char** argv) {
  run(ksw::bench::parse_options(argc, argv));
  return 0;
}
