// Table VI — Correlations of waiting times between stages (k = 2,
// rho = 0.5, m = 1), plus the Section V geometric covariance model
// (a = 0.12, b = 0.4 at this operating point) for comparison.
#include <iostream>

#include "bench_common.hpp"
#include "core/total_delay.hpp"
#include "sim/network.hpp"
#include "tables/table.hpp"

namespace {

constexpr unsigned kStages = 8;

void run(const ksw::bench::Options& opt) {
  ksw::sim::NetworkConfig cfg;
  cfg.k = 2;
  cfg.stages = kStages;
  cfg.p = 0.5;
  cfg.track_correlations = true;
  cfg.seed = opt.seed;
  cfg.warmup_cycles = opt.cycles(8'000);
  cfg.measure_cycles = opt.cycles(120'000);
  const auto r = ksw::sim::run_network(cfg);

  std::vector<std::string> headers = {"stage"};
  for (unsigned j = 1; j <= kStages; ++j)
    headers.push_back(std::to_string(j));
  ksw::tables::Table table(
      "Table VI: correlations of waiting times between stages "
      "(k=2, rho=0.5, m=1) - SIMULATION",
      headers);
  for (unsigned i = 1; i <= kStages; ++i) {
    table.begin_row(std::to_string(i));
    for (unsigned j = 1; j <= kStages; ++j) {
      if (j < i)
        table.add_blank();
      else
        table.add_number(r.stage_covariance->correlation(i - 1, j - 1));
    }
  }
  table.print(std::cout);

  ksw::core::NetworkTrafficSpec spec;
  spec.k = 2;
  spec.p = 0.5;
  const ksw::core::TotalDelay model(ksw::core::LaterStages(spec), kStages);
  ksw::tables::Table mtable(
      "\nSection V covariance model: corr(i, i+d) = a b^{d-1} "
      "(a=0.12, b=0.4 here)",
      headers);
  for (unsigned i = 1; i <= kStages; ++i) {
    mtable.begin_row(std::to_string(i));
    for (unsigned j = 1; j <= kStages; ++j) {
      if (j < i)
        mtable.add_blank();
      else
        mtable.add_number(model.correlation(i, j));
    }
  }
  mtable.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  run(ksw::bench::parse_options(argc, argv));
  return 0;
}
