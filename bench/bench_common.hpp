// Shared helpers for the table-reproduction harnesses.
#pragma once

#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>

namespace ksw::bench {

/// Command-line options shared by every harness.
struct Options {
  /// Scale factor on simulation length: 1.0 normally, 0.1 with --quick.
  double scale = 1.0;
  std::uint64_t seed = 1;

  [[nodiscard]] std::int64_t cycles(std::int64_t base) const {
    const auto scaled = static_cast<std::int64_t>(static_cast<double>(base) *
                                                  scale);
    return scaled < 1000 ? 1000 : scaled;
  }
};

inline Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opt.scale = 0.1;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      opt.seed = std::stoull(argv[i] + 7);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << "usage: " << argv[0] << " [--quick] [--seed=N]\n"
                << "  --quick   cut simulation length 10x (smoke run)\n"
                << "  --seed=N  master RNG seed (default 1)\n";
      std::exit(0);
    } else {
      std::cerr << "unknown option: " << argv[i] << "\n";
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace ksw::bench
