// Figures 3-8 — Distribution of total waiting times: simulation histogram
// against the gamma-distribution prediction, for n in {3, 6, 9, 12} stages
// and the paper's grid of (rho, m):
//   Fig 3: rho=0.2, m=1   Fig 4: p=0.05,  m=4 (rho=0.2)
//   Fig 5: rho=0.5, m=1   Fig 6: p=0.125, m=4 (rho=0.5)
//   Fig 7: rho=0.8, m=1   Fig 8: p=0.2,   m=4 (rho=0.8)
//
// Each figure prints the binned empirical pmf, the gamma pmf (continuity-
// corrected), an ASCII bar sketch, and the total-variation distance.
#include <algorithm>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "core/total_delay.hpp"
#include "sim/network.hpp"
#include "stats/goodness_of_fit.hpp"
#include "tables/table.hpp"

namespace {

struct Figure {
  const char* label;
  double rho;
  unsigned m;
};

void print_figure(const Figure& fig, const ksw::bench::Options& opt) {
  const double p = fig.rho / static_cast<double>(fig.m);

  ksw::sim::NetworkConfig cfg;
  cfg.k = 2;
  cfg.stages = 12;
  cfg.p = p;
  cfg.service = ksw::sim::ServiceSpec::deterministic(fig.m);
  cfg.total_checkpoints = {3, 6, 9, 12};
  cfg.seed = opt.seed;
  cfg.warmup_cycles = opt.cycles(5'000);
  cfg.measure_cycles = opt.cycles(fig.rho >= 0.8 ? 80'000 : 40'000);
  const auto r = ksw::sim::run_network(cfg);

  ksw::core::NetworkTrafficSpec spec;
  spec.k = 2;
  spec.p = p;
  spec.service = std::make_shared<ksw::core::DeterministicService>(fig.m);
  const ksw::core::LaterStages ls(spec);

  std::cout << "=== " << fig.label << ": k=2, p="
            << ksw::tables::format_number(p, 4) << ", m=" << fig.m << " ===\n";
  for (std::size_t i = 0; i < 4; ++i) {
    const unsigned n = 3 * (static_cast<unsigned>(i) + 1);
    const ksw::core::TotalDelay td(ls, n);
    const auto gamma = td.gamma_approximation();
    const auto& hist = r.total_wait[i];

    // Bin so that ~18 rows cover 99.5% of the mass.
    const std::int64_t w_hi = std::max<std::int64_t>(hist.quantile(0.995), 1);
    const std::int64_t width = std::max<std::int64_t>(1, (w_hi + 17) / 18);

    std::string title = fig.label;
    title += ", ";
    title += std::to_string(n);
    title += " stages: total waiting-time distribution";
    ksw::tables::Table table(std::move(title),
                             {"w", "simulated", "gamma", "sketch"});
    std::int64_t lo = 0;
    while (lo <= w_hi) {
      const std::int64_t hi = lo + width - 1;
      double sim_mass = 0.0, model_mass = 0.0;
      for (std::int64_t w = lo; w <= hi; ++w) {
        sim_mass += hist.pmf(w);
        model_mass += ksw::stats::discretized_model_pmf(gamma, w);
      }
      const auto bars = static_cast<std::size_t>(sim_mass * 60.0);
      std::string label = std::to_string(lo);
      if (width > 1) {
        label += '-';
        label += std::to_string(hi);
      }
      table.begin_row(std::move(label))
          .add_number(sim_mass)
          .add_number(model_mass)
          .add_cell(std::string(bars, '#'));
      lo += width;
    }
    table.print(std::cout);
    std::cout << "  predicted mean/var: "
              << ksw::tables::format_number(td.mean_total(), 3) << "/"
              << ksw::tables::format_number(td.variance_total(), 3)
              << "   simulated: "
              << ksw::tables::format_number(hist.mean(), 3) << "/"
              << ksw::tables::format_number(hist.variance(), 3)
              << "   total-variation distance (binned): "
              << ksw::tables::format_number(
                     ksw::stats::binned_total_variation(hist, gamma, width),
                     4)
              << "\n\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = ksw::bench::parse_options(argc, argv);
  const Figure figures[] = {
      {"Fig 3", 0.2, 1}, {"Fig 4", 0.2, 4}, {"Fig 5", 0.5, 1},
      {"Fig 6", 0.5, 4}, {"Fig 7", 0.8, 1}, {"Fig 8", 0.8, 4},
  };
  for (const auto& fig : figures) print_figure(fig, opt);
  return 0;
}
