// Table I — Waiting times and variances, rho varying (k = 2, m = 1, q = 0).
//
// Reproduces: per-stage simulated waiting mean/variance for stages 1-8,
// the exact first-stage ANALYSIS row (eqs. 6, 7) and the limiting ESTIMATE
// row (eqs. 11, 13).
#include <iostream>

#include "bench_common.hpp"
#include "core/later_stages.hpp"
#include "sim/network.hpp"
#include "tables/table.hpp"

namespace {

constexpr unsigned kStages = 8;

void run(const ksw::bench::Options& opt) {
  const double rhos[] = {0.2, 0.4, 0.5, 0.6, 0.8};

  std::vector<std::string> headers = {"row"};
  for (double rho : rhos) {
    headers.push_back("w (p=" + ksw::tables::format_number(rho, 1) + ")");
    headers.push_back("v (p=" + ksw::tables::format_number(rho, 1) + ")");
  }
  ksw::tables::Table table(
      "Table I: waiting times and variances, rho varying (k=2, m=1, q=0)",
      headers);

  std::vector<ksw::sim::NetworkResults> results;
  std::vector<ksw::core::LaterStages> estimates;
  for (double rho : rhos) {
    ksw::sim::NetworkConfig cfg;
    cfg.k = 2;
    cfg.stages = kStages;
    cfg.p = rho;
    cfg.seed = opt.seed;
    cfg.warmup_cycles = opt.cycles(8'000);
    cfg.measure_cycles = opt.cycles(rho >= 0.8 ? 160'000 : 80'000);
    results.push_back(ksw::sim::run_network(cfg));

    ksw::core::NetworkTrafficSpec spec;
    spec.k = 2;
    spec.p = rho;
    estimates.emplace_back(spec);
  }

  for (unsigned s = 0; s < kStages; ++s) {
    table.begin_row("stage " + std::to_string(s + 1));
    for (const auto& r : results)
      table.add_number(r.stage_wait[s].mean())
          .add_number(r.stage_wait[s].variance());
  }
  table.begin_row("ANALYSIS (eq 6/7)");
  for (const auto& ls : estimates)
    table.add_number(ls.mean_first_stage())
        .add_number(ls.variance_first_stage());
  table.begin_row("ESTIMATE (eq 11/13)");
  for (const auto& ls : estimates)
    table.add_number(ls.mean_limit()).add_number(ls.variance_limit());

  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  run(ksw::bench::parse_options(argc, argv));
  return 0;
}
