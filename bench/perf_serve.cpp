// Serve-path throughput probe: queries/sec with the evaluation cache on
// vs off, over a repeated-tuple ksw.query/v1 workload.
//
//   perf_serve [--requests=N] [--tuples=T] [--threads=W] [--quick]
//              [--out=FILE] [--no-gate] [--access-log=FILE]
//
// The workload repeats T distinct first_stage distribution queries (the
// most expensive analytic kernel) across N requests, the shape a client
// sweeping a dashboard or re-rendering a table produces. The cold
// service runs with --cache-mb=0 semantics (every request re-evaluates);
// the cached service uses the default cache, so all but the first
// occurrence of each tuple are hits returning memoized bytes.
//
// Prints a human summary plus one machine-readable line prefixed
// "BENCH_serve.json" (also written to --out=FILE when given) — including
// per-request service-time p50/p99/p999 read back from the service's
// serve.service_us histogram. --access-log additionally enables the
// request-telemetry path (JSONL access log + span tracer) so
// scripts/check_obs_overhead.sh can price it against the plain run.
// Unless --no-gate, exits 3 when the cached/cold speedup falls below
// 10x — the acceptance floor for the serving layer.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include "io/atomic.hpp"
#include "io/json.hpp"
#include "obs/span.hpp"
#include "serve/service.hpp"

namespace {

struct Options {
  std::size_t requests = 2000;
  std::size_t tuples = 8;
  std::size_t threads = 0;
  std::string out_path;
  std::string access_log;
  bool gate = true;
};

/// Per-request service-time quantiles (microseconds).
struct Latency {
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

std::string build_workload(const Options& opt) {
  std::ostringstream os;
  for (std::size_t i = 0; i < opt.requests; ++i) {
    // T distinct tuples, interleaved; distribution=2048 makes the cold
    // evaluation do real PGF inversion work per request.
    os << R"({"kernel":"first_stage","id":)" << i
       << R"(,"params":{"p":0.)" << (i % opt.tuples + 1)
       << R"(,"k":4,"service":"det:2","distribution":2048}})" << "\n";
  }
  return os.str();
}

double run_once(const Options& opt, std::uint64_t cache_mb,
                ksw::serve::ServeSummary* summary, Latency* latency) {
  ksw::serve::ServeOptions sopts;
  sopts.threads = opt.threads;
  sopts.cache_mb = cache_mb;
  sopts.batch = 64;
  ksw::obs::Tracer tracer;
  if (!opt.access_log.empty()) {
    sopts.access_log = opt.access_log;
    sopts.tracer = &tracer;
  }
  ksw::serve::Service service(sopts);
  std::istringstream in(build_workload(opt));
  std::ostringstream sink;
  const auto start = std::chrono::steady_clock::now();
  *summary = service.run(in, sink, nullptr);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const auto& hists = service.registry().histograms();
  if (const auto it = hists.find("serve.service_us"); it != hists.end()) {
    latency->p50 = it->second->quantile(0.5);
    latency->p99 = it->second->quantile(0.99);
    latency->p999 = it->second->quantile(0.999);
  }
  return wall;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opt.requests = 300;
    } else if (arg == "--no-gate") {
      opt.gate = false;
    } else if (arg.rfind("--requests=", 0) == 0) {
      opt.requests = static_cast<std::size_t>(std::stoul(arg.substr(11)));
    } else if (arg.rfind("--tuples=", 0) == 0) {
      opt.tuples = static_cast<std::size_t>(std::stoul(arg.substr(9)));
    } else if (arg.rfind("--threads=", 0) == 0) {
      opt.threads = static_cast<std::size_t>(std::stoul(arg.substr(10)));
    } else if (arg.rfind("--out=", 0) == 0) {
      opt.out_path = arg.substr(6);
    } else if (arg.rfind("--access-log=", 0) == 0) {
      opt.access_log = arg.substr(13);
    } else {
      std::fprintf(stderr,
                   "perf_serve: unknown option %s\n"
                   "usage: perf_serve [--requests=N] [--tuples=T] "
                   "[--threads=W] [--quick] [--out=FILE] [--no-gate] "
                   "[--access-log=FILE]\n",
                   arg.c_str());
      return 2;
    }
  }
  if (opt.tuples == 0 || opt.requests < opt.tuples) {
    std::fprintf(stderr, "perf_serve: need requests >= tuples >= 1\n");
    return 2;
  }

  ksw::serve::ServeSummary cold_summary;
  ksw::serve::ServeSummary cached_summary;
  Latency cold_lat;
  Latency cached_lat;
  const double cold_s = run_once(opt, /*cache_mb=*/0, &cold_summary,
                                 &cold_lat);
  const double cached_s = run_once(opt, /*cache_mb=*/64, &cached_summary,
                                   &cached_lat);

  const double qps_cold = static_cast<double>(opt.requests) / cold_s;
  const double qps_cached = static_cast<double>(opt.requests) / cached_s;
  const double speedup = qps_cached / qps_cold;

  std::printf("serve throughput (%zu requests over %zu tuples%s):\n",
              opt.requests, opt.tuples,
              opt.access_log.empty() ? "" : ", access log on");
  std::printf(
      "  cold    %.4f s  (%.3e queries/sec, cache off)  "
      "p50/p99/p999 %.1f/%.1f/%.1f us\n",
      cold_s, qps_cold, cold_lat.p50, cold_lat.p99, cold_lat.p999);
  std::printf(
      "  cached  %.4f s  (%.3e queries/sec)  "
      "p50/p99/p999 %.1f/%.1f/%.1f us\n",
      cached_s, qps_cached, cached_lat.p50, cached_lat.p99, cached_lat.p999);
  std::printf("  speedup %.1fx\n", speedup);

  ksw::io::Json j = ksw::io::Json::object();
  j.set("requests", static_cast<std::uint64_t>(opt.requests));
  j.set("tuples", static_cast<std::uint64_t>(opt.tuples));
  j.set("threads", static_cast<std::uint64_t>(opt.threads));
  j.set("cold_wall_s", cold_s);
  j.set("cached_wall_s", cached_s);
  j.set("qps_cold", qps_cold);
  j.set("qps_cached", qps_cached);
  j.set("speedup", speedup);
  j.set("responses_cold", cold_summary.responses);
  j.set("responses_cached", cached_summary.responses);
  j.set("access_log", !opt.access_log.empty());
  j.set("cold_p50_us", cold_lat.p50);
  j.set("cold_p99_us", cold_lat.p99);
  j.set("cold_p999_us", cold_lat.p999);
  j.set("cached_p50_us", cached_lat.p50);
  j.set("cached_p99_us", cached_lat.p99);
  j.set("cached_p999_us", cached_lat.p999);
  std::printf("BENCH_serve.json %s\n", j.to_string(0).c_str());
  if (!opt.out_path.empty())
    ksw::io::atomic_write_file(opt.out_path, j.to_string(2) + "\n");

  if (opt.gate && !(speedup >= 10.0)) {
    std::fprintf(stderr,
                 "perf_serve: GATE FAILED: cached/cold speedup %.2fx < "
                 "10x floor\n",
                 speedup);
    return 3;
  }
  return 0;
}
