// Extension (Sections III-B, III-C) — Geometric service times and the
// M/M/1 continuous-time limit: as the clock is refined (n cycles per time
// unit), the discrete queue's scaled waiting time converges to M/M/1.
#include <iostream>

#include "bench_common.hpp"
#include "core/first_stage.hpp"
#include "core/mg1.hpp"
#include "sim/first_stage_sim.hpp"
#include "tables/table.hpp"

namespace {

void geometric_sweep(const ksw::bench::Options& opt) {
  ksw::tables::Table table(
      "Geometric service (k=2, rho=0.5): analysis vs simulation",
      {"mu", "mean svc", "sim mean", "exact mean", "sim var", "exact var"});
  for (double mu : {1.0, 0.5, 0.25, 0.125}) {
    const double p = 0.5 * mu;

    ksw::sim::FirstStageConfig cfg;
    cfg.p = p;
    cfg.service = ksw::sim::ServiceSpec::geometric(mu);
    cfg.seed = opt.seed;
    cfg.warmup_cycles = opt.cycles(5'000);
    cfg.measure_cycles = opt.cycles(400'000);
    const auto r = ksw::sim::run_first_stage(cfg);

    ksw::core::QueueSpec spec{
        std::shared_ptr<ksw::core::ArrivalModel>(
            ksw::core::make_uniform_arrivals(2, 2, p)),
        std::make_shared<ksw::core::GeometricService>(mu)};
    const auto exact = ksw::core::FirstStage(spec).moments();

    table.begin_row(ksw::tables::format_number(mu, 3))
        .add_number(1.0 / mu, 1)
        .add_number(r.waiting.mean(), 3)
        .add_number(exact.mean, 3)
        .add_number(r.waiting.variance(), 3)
        .add_number(exact.variance, 3);
  }
  table.print(std::cout);
}

void mm1_limit() {
  const double rho = 0.6;
  const auto ref = ksw::core::mg1::mm1_waiting(rho, 1.0);
  ksw::tables::Table table(
      "\nM/M/1 limit (rho=0.6): discrete queue with n cycles per time unit",
      {"n", "scaled mean", "M/M/1 mean", "scaled var", "M/M/1 var"});
  for (double n : {4.0, 16.0, 64.0, 256.0, 1024.0}) {
    const double mu = 1.0 / n;
    const double p = rho * mu;
    ksw::core::QueueSpec spec{
        std::shared_ptr<ksw::core::ArrivalModel>(
            ksw::core::make_uniform_arrivals(1, 1, p)),
        std::make_shared<ksw::core::GeometricService>(mu)};
    const auto m = ksw::core::FirstStage(spec).moments();
    table.begin_row(ksw::tables::format_number(n, 0))
        .add_number(m.mean / n, 4)
        .add_number(ref.mean, 4)
        .add_number(m.variance / (n * n), 4)
        .add_number(ref.variance, 4);
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  geometric_sweep(ksw::bench::parse_options(argc, argv));
  mm1_limit();
  return 0;
}
