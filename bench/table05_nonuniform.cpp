// Table V — Waiting times and variances, favorite-output probability q
// varying (rho = 0.5, k = 2, m = 1). Each source sends to its own address
// with probability q (Ultracomputer/RP3 private-memory traffic).
#include <iostream>

#include "bench_common.hpp"
#include "core/later_stages.hpp"
#include "sim/network.hpp"
#include "tables/table.hpp"

namespace {

constexpr unsigned kStages = 8;

void run(const ksw::bench::Options& opt) {
  const double qs[] = {0.0, 0.25, 0.5, 0.75};

  std::vector<std::string> headers = {"row"};
  for (double q : qs) {
    headers.push_back("w (q=" + ksw::tables::format_number(q, 2) + ")");
    headers.push_back("v (q=" + ksw::tables::format_number(q, 2) + ")");
  }
  ksw::tables::Table table(
      "Table V: waiting times and variances, q varying (rho=0.5, k=2, m=1)",
      headers);

  std::vector<ksw::sim::NetworkResults> results;
  std::vector<ksw::core::LaterStages> estimates;
  for (double q : qs) {
    ksw::sim::NetworkConfig cfg;
    cfg.k = 2;
    cfg.stages = kStages;
    cfg.p = 0.5;
    cfg.q = q;
    cfg.seed = opt.seed;
    cfg.warmup_cycles = opt.cycles(8'000);
    cfg.measure_cycles = opt.cycles(80'000);
    results.push_back(ksw::sim::run_network(cfg));

    ksw::core::NetworkTrafficSpec spec;
    spec.k = 2;
    spec.p = 0.5;
    spec.q = q;
    estimates.emplace_back(spec);
  }

  for (unsigned s = 0; s < kStages; ++s) {
    table.begin_row("stage " + std::to_string(s + 1));
    for (const auto& r : results)
      table.add_number(r.stage_wait[s].mean())
          .add_number(r.stage_wait[s].variance());
  }
  table.begin_row("ANALYSIS (III-A-3)");
  for (const auto& ls : estimates)
    table.add_number(ls.mean_first_stage())
        .add_number(ls.variance_first_stage());
  table.begin_row("ESTIMATE (IV-D)");
  for (const auto& ls : estimates)
    table.add_number(ls.mean_limit()).add_number(ls.variance_limit());

  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  run(ksw::bench::parse_options(argc, argv));
  return 0;
}
