// Fleet throughput and brownout probe: drives a real `kswsim fleet`
// subprocess over TCP and prices it against in-process single serve.
//
//   perf_serve_fleet [--workers=N] [--requests=N] [--tuples=T]
//                    [--queue-depth=D] [--brownout-seconds=S] [--quick]
//                    [--out=FILE] [--no-gate] [--kswsim=PATH]
//
// Three phases:
//   1. baseline  — the perf_serve cached workload through an in-process
//                  serve::Service (same tuples), for a comparable
//                  single-process queries/sec figure.
//   2. capacity  — the same workload over TCP through the fleet, with a
//                  windowed closed loop (window < queue depth, so
//                  admission control never sheds); the warm pass is also
//                  checked byte-for-byte against single-process serve.
//   3. brownout  — an open-loop Poisson arrival process at 2x the
//                  measured fleet capacity. The gate is shed-not-
//                  collapse: every request answered, some answered with
//                  error.kind "overload", and the p99 latency of the
//                  *served* requests stays bounded.
//
// Gates are locally scaled (ISSUE: CI machines range from 1 to many
// cores): scale = min(workers, hardware threads). With scale >= 2 the
// fleet must reach 0.5 * scale * baseline (=> >= 4x at 8 workers on
// 8+ cores); on a single core it must stay above an IPC-tax floor of
// 0.15 * baseline, since every request adds two socket hops but zero
// parallelism. Emits one "BENCH_serve_fleet.json" line (and --out).
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "io/atomic.hpp"
#include "io/json.hpp"
#include "serve/service.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  std::size_t workers = 4;
  std::size_t requests = 10'000;
  std::size_t tuples = 8;
  std::size_t queue_depth = 256;
  double brownout_seconds = 2.0;
  std::string out_path;
  std::string kswsim = KSW_KSWSIM_BIN;
  bool gate = true;
};

std::string build_workload(std::size_t requests, std::size_t tuples) {
  std::ostringstream os;
  for (std::size_t i = 0; i < requests; ++i) {
    os << R"({"kernel":"first_stage","id":)" << i
       << R"(,"params":{"p":0.)" << (i % tuples + 1)
       << R"(,"k":4,"service":"det:2","distribution":2048}})" << "\n";
  }
  return os.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const auto nl = text.find('\n', start);
    if (nl == std::string::npos) break;
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// A `kswsim fleet` child with its stderr on a pipe.
class FleetProc {
 public:
  bool start(const Options& opt) {
    int errpipe[2];
    if (::pipe(errpipe) != 0) return false;
    pid_ = ::fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      ::close(errpipe[0]);
      ::dup2(errpipe[1], STDERR_FILENO);
      ::close(errpipe[1]);
      const std::string workers = "--workers=" + std::to_string(opt.workers);
      const std::string depth =
          "--queue-depth=" + std::to_string(opt.queue_depth);
      ::execl(opt.kswsim.c_str(), opt.kswsim.c_str(), "fleet",
              "--tcp=127.0.0.1:0", workers.c_str(), depth.c_str(),
              static_cast<char*>(nullptr));
      ::_exit(127);
    }
    ::close(errpipe[1]);
    err_fd_ = errpipe[0];
    const int flags = ::fcntl(err_fd_, F_GETFL, 0);
    ::fcntl(err_fd_, F_SETFL, flags | O_NONBLOCK);
    // Wait for the listening banner (workers spawn first).
    const auto deadline = Clock::now() + std::chrono::seconds(30);
    const std::string needle = "fleet: listening on 127.0.0.1:";
    while (Clock::now() < deadline) {
      char chunk[4096];
      const ssize_t n = ::read(err_fd_, chunk, sizeof chunk);
      if (n > 0) err_buf_.append(chunk, static_cast<std::size_t>(n));
      const auto pos = err_buf_.find(needle);
      if (pos != std::string::npos &&
          err_buf_.find('\n', pos) != std::string::npos) {
        port_ = std::stoi(err_buf_.substr(pos + needle.size()));
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    std::fprintf(stderr, "perf_serve_fleet: fleet did not start:\n%s",
                 err_buf_.c_str());
    return false;
  }

  ~FleetProc() {
    if (pid_ > 0) {
      ::kill(pid_, SIGTERM);
      ::waitpid(pid_, nullptr, 0);
    }
    if (err_fd_ >= 0) ::close(err_fd_);
  }

  [[nodiscard]] int connect_client() const {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port_));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd);
      return -1;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return fd;
  }

 private:
  pid_t pid_ = -1;
  int err_fd_ = -1;
  int port_ = 0;
  std::string err_buf_;
};

bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// Windowed closed loop: keep at most `window` requests in flight so the
/// fleet's admission control never sheds; returns the wall seconds and
/// every response line in order.
double closed_loop(int fd, const std::vector<std::string>& requests,
                   std::size_t window, std::vector<std::string>* responses) {
  responses->clear();
  responses->reserve(requests.size());
  std::string rbuf;
  std::size_t sent = 0;
  std::size_t received = 0;
  const auto start = Clock::now();
  while (received < requests.size()) {
    while (sent < requests.size() && sent - received < window) {
      const std::string line = requests[sent] + "\n";
      if (!write_all(fd, line.data(), line.size())) return -1.0;
      sent++;
    }
    char chunk[65536];
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return -1.0;
    }
    rbuf.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while ((nl = rbuf.find('\n')) != std::string::npos) {
      responses->push_back(rbuf.substr(0, nl));
      rbuf.erase(0, nl + 1);
      received++;
    }
  }
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct BrownoutResult {
  std::size_t offered = 0;
  std::size_t answered = 0;
  std::size_t served_ok = 0;
  std::size_t shed_overload = 0;
  /// In-band kernel errors. The perf_serve workload deliberately keeps
  /// one saturated tuple (p=0.5, k=4, det:2 -> rho = 1) that answers
  /// kind "numeric"; those are served, not shed, and single-process
  /// serve answers them byte-identically.
  std::size_t other_errors = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
};

/// Open-loop Poisson load at `qps` for `seconds`: a writer thread sends
/// on schedule no matter how slow responses come back (the defining
/// property of open-loop load), a reader thread timestamps completions.
bool brownout(int fd, double qps, double seconds, std::size_t tuples,
              BrownoutResult* result) {
  const auto t0 = Clock::now();
  const std::size_t planned = static_cast<std::size_t>(qps * seconds);
  std::vector<Clock::time_point> sends(planned);
  std::vector<double> latency_ms;
  std::atomic<std::size_t> sent{0};
  std::atomic<bool> writer_ok{true};

  std::thread writer([&] {
    std::mt19937_64 rng(20250809);
    std::exponential_distribution<double> gap(qps);
    double next_s = 0.0;
    for (std::size_t i = 0; i < planned; ++i) {
      next_s += gap(rng);
      const auto due = t0 + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(next_s));
      std::this_thread::sleep_until(due);
      const std::string line =
          R"({"kernel":"first_stage","id":)" + std::to_string(i) +
          R"(,"params":{"p":0.)" + std::to_string(i % tuples + 1) +
          R"(,"k":4,"service":"det:2","distribution":2048}})" + "\n";
      sends[i] = Clock::now();
      if (!write_all(fd, line.data(), line.size())) {
        writer_ok.store(false);
        return;
      }
      sent.store(i + 1, std::memory_order_release);
    }
    // Half-close: tell the fleet no more requests are coming, but keep
    // reading until everything in flight is answered.
    ::shutdown(fd, SHUT_WR);
  });

  std::string rbuf;
  std::size_t answered = 0;
  // Hard stop well past the load window, in case the fleet never closes.
  const auto reader_deadline =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(seconds + 30.0));
  while (Clock::now() < reader_deadline) {
    struct pollfd pfd {
      fd, POLLIN, 0
    };
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) {
      if (!writer_ok.load()) break;
      continue;
    }
    char chunk[65536];
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) break;  // EOF: fleet closed after our half-close drain
    rbuf.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while ((nl = rbuf.find('\n')) != std::string::npos) {
      const std::string line = rbuf.substr(0, nl);
      rbuf.erase(0, nl + 1);
      const auto now = Clock::now();
      const bool is_ok = line.find(R"("ok":true)") != std::string::npos;
      // Responses come back in request order on this connection, so the
      // k-th response matches the k-th send. Quantiles cover *served*
      // requests only: shed responses return in microseconds by design
      // and would flatter the tail.
      if (is_ok && answered < sends.size()) {
        latency_ms.push_back(
            std::chrono::duration<double, std::milli>(now - sends[answered])
                .count());
      }
      answered++;
      if (is_ok) {
        result->served_ok++;
      } else if (line.find(R"("kind":"overload")") != std::string::npos) {
        result->shed_overload++;
      } else {
        result->other_errors++;
      }
    }
  }
  writer.join();
  result->offered = sent.load();
  result->answered = answered;

  if (!latency_ms.empty()) {
    std::sort(latency_ms.begin(), latency_ms.end());
    const auto q = [&](double p) {
      const auto idx = static_cast<std::size_t>(
          p * static_cast<double>(latency_ms.size() - 1));
      return latency_ms[idx];
    };
    result->p50_ms = q(0.5);
    result->p99_ms = q(0.99);
    result->p999_ms = q(0.999);
  }
  return writer_ok.load();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opt.requests = 2000;
      opt.brownout_seconds = 1.0;
    } else if (arg == "--no-gate") {
      opt.gate = false;
    } else if (arg.rfind("--workers=", 0) == 0) {
      opt.workers = static_cast<std::size_t>(std::stoul(arg.substr(10)));
    } else if (arg.rfind("--requests=", 0) == 0) {
      opt.requests = static_cast<std::size_t>(std::stoul(arg.substr(11)));
    } else if (arg.rfind("--tuples=", 0) == 0) {
      opt.tuples = static_cast<std::size_t>(std::stoul(arg.substr(9)));
    } else if (arg.rfind("--queue-depth=", 0) == 0) {
      opt.queue_depth = static_cast<std::size_t>(std::stoul(arg.substr(14)));
    } else if (arg.rfind("--brownout-seconds=", 0) == 0) {
      opt.brownout_seconds = std::stod(arg.substr(19));
    } else if (arg.rfind("--out=", 0) == 0) {
      opt.out_path = arg.substr(6);
    } else if (arg.rfind("--kswsim=", 0) == 0) {
      opt.kswsim = arg.substr(9);
    } else {
      std::fprintf(stderr,
                   "perf_serve_fleet: unknown option %s\n"
                   "usage: perf_serve_fleet [--workers=N] [--requests=N] "
                   "[--tuples=T] [--queue-depth=D] [--brownout-seconds=S] "
                   "[--quick] [--out=FILE] [--no-gate] [--kswsim=PATH]\n",
                   arg.c_str());
      return 2;
    }
  }
  if (opt.workers == 0 || opt.tuples == 0 || opt.requests < opt.tuples) {
    std::fprintf(stderr,
                 "perf_serve_fleet: need workers >= 1, requests >= tuples "
                 ">= 1\n");
    return 2;
  }
  ::signal(SIGPIPE, SIG_IGN);

  const std::string workload = build_workload(opt.requests, opt.tuples);
  const std::vector<std::string> request_lines = split_lines(workload);

  // Phase 1: single-process cached baseline (two passes; measure warm).
  double baseline_qps = 0.0;
  std::vector<std::string> single_warm;
  {
    ksw::serve::Service service(ksw::serve::ServeOptions{});
    {
      std::istringstream in(workload);
      std::ostringstream sink;
      service.run(in, sink, nullptr);  // warm the cache
    }
    std::istringstream in(workload);
    std::ostringstream out;
    const auto start = Clock::now();
    service.run(in, out, nullptr);
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    baseline_qps = static_cast<double>(opt.requests) / wall;
    single_warm = split_lines(out.str());
  }

  // Phase 2: fleet capacity over TCP (warm pass measured), plus the
  // bit-identity check on the warm responses.
  FleetProc fleet;
  if (!fleet.start(opt)) return 5;
  const int fd = fleet.connect_client();
  if (fd < 0) {
    std::fprintf(stderr, "perf_serve_fleet: cannot connect\n");
    return 5;
  }
  const std::size_t window = std::min<std::size_t>(128, opt.queue_depth / 2);
  std::vector<std::string> fleet_cold;
  std::vector<std::string> fleet_warm;
  if (closed_loop(fd, request_lines, window, &fleet_cold) < 0) {
    std::fprintf(stderr, "perf_serve_fleet: fleet connection died (cold)\n");
    return 5;
  }
  const double fleet_wall =
      closed_loop(fd, request_lines, window, &fleet_warm);
  ::close(fd);
  if (fleet_wall < 0) {
    std::fprintf(stderr, "perf_serve_fleet: fleet connection died (warm)\n");
    return 5;
  }
  const double fleet_qps = static_cast<double>(opt.requests) / fleet_wall;

  std::size_t mismatches = 0;
  if (fleet_warm.size() != single_warm.size()) {
    mismatches = opt.requests;
  } else {
    for (std::size_t i = 0; i < fleet_warm.size(); ++i)
      if (fleet_warm[i] != single_warm[i]) mismatches++;
  }

  // Phase 3: brownout at 2x the measured fleet capacity.
  const double brownout_qps = 2.0 * fleet_qps;
  const int bfd = fleet.connect_client();
  if (bfd < 0) {
    std::fprintf(stderr, "perf_serve_fleet: cannot connect (brownout)\n");
    return 5;
  }
  BrownoutResult br;
  const bool brownout_ok =
      brownout(bfd, brownout_qps, opt.brownout_seconds, opt.tuples, &br);
  ::close(bfd);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t scale =
      std::min<std::size_t>(opt.workers, static_cast<std::size_t>(hw));
  const double multi_core_floor =
      0.5 * static_cast<double>(scale) * baseline_qps;
  const double single_core_floor = 0.15 * baseline_qps;
  const double floor_qps = scale >= 2 ? multi_core_floor : single_core_floor;

  std::printf("fleet throughput (%zu workers, %zu requests over %zu tuples, "
              "%u hw threads):\n",
              opt.workers, opt.requests, opt.tuples, hw);
  std::printf("  single-process cached  %.3e queries/sec\n", baseline_qps);
  std::printf("  fleet cached (TCP)     %.3e queries/sec  (%.2fx, floor "
              "%.3e)\n",
              fleet_qps, fleet_qps / baseline_qps, floor_qps);
  std::printf("  bit-identity           %zu mismatched of %zu responses\n",
              mismatches, opt.requests);
  std::printf("brownout at 2x capacity (%.3e qps offered for %.1f s):\n",
              brownout_qps, opt.brownout_seconds);
  std::printf("  offered %zu  answered %zu  ok %zu  overload %zu  other "
              "%zu\n",
              br.offered, br.answered, br.served_ok, br.shed_overload,
              br.other_errors);
  std::printf("  latency p50/p99/p999  %.2f / %.2f / %.2f ms\n", br.p50_ms,
              br.p99_ms, br.p999_ms);

  ksw::io::Json j = ksw::io::Json::object();
  j.set("workers", static_cast<std::uint64_t>(opt.workers));
  j.set("requests", static_cast<std::uint64_t>(opt.requests));
  j.set("tuples", static_cast<std::uint64_t>(opt.tuples));
  j.set("queue_depth", static_cast<std::uint64_t>(opt.queue_depth));
  j.set("hw_threads", static_cast<std::uint64_t>(hw));
  j.set("scale", static_cast<std::uint64_t>(scale));
  j.set("qps_single_cached", baseline_qps);
  j.set("qps_fleet_cached", fleet_qps);
  j.set("fleet_vs_single", fleet_qps / baseline_qps);
  j.set("gate_floor_qps", floor_qps);
  j.set("bit_identical", mismatches == 0);
  j.set("mismatches", static_cast<std::uint64_t>(mismatches));
  j.set("brownout_offered_qps", brownout_qps);
  j.set("brownout_offered", static_cast<std::uint64_t>(br.offered));
  j.set("brownout_answered", static_cast<std::uint64_t>(br.answered));
  j.set("brownout_ok", static_cast<std::uint64_t>(br.served_ok));
  j.set("brownout_shed_overload",
        static_cast<std::uint64_t>(br.shed_overload));
  j.set("brownout_other_errors",
        static_cast<std::uint64_t>(br.other_errors));
  j.set("brownout_p50_ms", br.p50_ms);
  j.set("brownout_p99_ms", br.p99_ms);
  j.set("brownout_p999_ms", br.p999_ms);
  std::printf("BENCH_serve_fleet.json %s\n", j.to_string(0).c_str());
  if (!opt.out_path.empty())
    ksw::io::atomic_write_file(opt.out_path, j.to_string(2) + "\n");

  if (!opt.gate) return 0;
  bool failed = false;
  if (mismatches != 0) {
    std::fprintf(stderr,
                 "perf_serve_fleet: GATE FAILED: %zu fleet responses "
                 "differ from single-process serve\n",
                 mismatches);
    failed = true;
  }
  if (!(fleet_qps >= floor_qps)) {
    std::fprintf(stderr,
                 "perf_serve_fleet: GATE FAILED: fleet %.3e qps < floor "
                 "%.3e qps (scale %zu)\n",
                 fleet_qps, floor_qps, scale);
    failed = true;
  }
  if (!brownout_ok || br.answered < br.offered) {
    std::fprintf(stderr,
                 "perf_serve_fleet: GATE FAILED: brownout lost requests "
                 "(%zu answered of %zu offered)\n",
                 br.answered, br.offered);
    failed = true;
  }
  if (br.shed_overload == 0) {
    std::fprintf(stderr,
                 "perf_serve_fleet: GATE FAILED: 2x overload never shed — "
                 "admission control inert\n");
    failed = true;
  }
  if (!(br.p99_ms <= 500.0)) {
    std::fprintf(stderr,
                 "perf_serve_fleet: GATE FAILED: brownout p99 %.1f ms "
                 "exceeds the 500 ms bound (queueing collapse)\n",
                 br.p99_ms);
    failed = true;
  }
  return failed ? 3 : 0;
}
