// Engine micro-benchmarks (google-benchmark): throughput of the analytic
// kernels and the cycle-accurate simulator.
//
// Custom main: before the google-benchmark suite, a fixed simulator
// throughput probe (k=2, stages=8, p=0.5) runs, followed by a load sweep
// (k=4, stages=6, rho in {0.5, 0.8, 0.95}) covering the regimes the
// active-set scheduler cares about. Each probe prints cycles/sec and
// packets/sec plus one machine-readable line prefixed "BENCH_perf.json".
// Flags (consumed before benchmark::Initialize):
//   --perf-only       run only the throughput probes, skip the BM_ suite
//   --obs=on|off      probe with observability sampling enabled (default
//                     off); scripts/check_obs_overhead.sh compares the two.
//   --baseline=FILE   JSONL of recorded BENCH_perf.json lines to compare
//                     against (default ./BENCH_perf.json). Every probe
//                     prints its baseline line even when the file is
//                     absent — a fresh clone reports "none" rather than
//                     silently omitting the comparison.
//   --gate            exit 3 if any probe regresses more than 20% in
//                     packets/sec vs its baseline entry (CI; see
//                     scripts/check_perf.sh and docs/PERFORMANCE.md).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/first_stage.hpp"
#include "core/total_delay.hpp"
#include "io/json.hpp"
#include "obs/metrics.hpp"
#include "sim/first_stage_sim.hpp"
#include "sim/network.hpp"

namespace {

void BM_FirstStageMoments(benchmark::State& state) {
  // rho = p * m = 0.2 * 4 = 0.8 (must stay < 1 for a stable queue).
  ksw::core::QueueSpec spec{
      std::shared_ptr<ksw::core::ArrivalModel>(
          ksw::core::make_uniform_arrivals(2, 2, 0.2)),
      std::make_shared<ksw::core::DeterministicService>(4)};
  const ksw::core::FirstStage fs(spec);
  for (auto _ : state) benchmark::DoNotOptimize(fs.moments().variance);
}
BENCHMARK(BM_FirstStageMoments);

void BM_DistributionInversion(benchmark::State& state) {
  ksw::core::QueueSpec spec{
      std::shared_ptr<ksw::core::ArrivalModel>(
          ksw::core::make_uniform_arrivals(2, 2, 0.5)),
      std::make_shared<ksw::core::DeterministicService>(1)};
  const ksw::core::FirstStage fs(spec);
  const auto length = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(fs.distribution(length).back());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DistributionInversion)->Range(64, 2048)->Complexity();

void BM_TotalDelayPrediction(benchmark::State& state) {
  ksw::core::NetworkTrafficSpec spec;
  spec.k = 2;
  spec.p = 0.5;
  const ksw::core::LaterStages ls(spec);
  for (auto _ : state) {
    const ksw::core::TotalDelay td(ls, 12);
    benchmark::DoNotOptimize(td.variance_total());
  }
}
BENCHMARK(BM_TotalDelayPrediction);

void BM_SingleSwitchSim(benchmark::State& state) {
  ksw::sim::FirstStageConfig cfg;
  cfg.p = 0.5;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = state.range(0);
  for (auto _ : state) {
    cfg.seed += 1;  // fresh stream each iteration
    benchmark::DoNotOptimize(ksw::sim::run_first_stage(cfg).messages);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SingleSwitchSim)->Arg(10'000);

void BM_NetworkSimCyclesPerSecond(benchmark::State& state) {
  ksw::sim::NetworkConfig cfg;
  cfg.k = 2;
  cfg.stages = static_cast<unsigned>(state.range(0));
  cfg.p = 0.5;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 2'000;
  for (auto _ : state) {
    cfg.seed += 1;
    benchmark::DoNotOptimize(ksw::sim::run_network(cfg).packets_delivered);
  }
  // One item = one port-cycle of switching work.
  state.SetItemsProcessed(state.iterations() * cfg.measure_cycles *
                          (1ll << cfg.stages) * cfg.stages);
}
BENCHMARK(BM_NetworkSimCyclesPerSecond)->Arg(6)->Arg(8)->Arg(10);

// ---------------------------------------------------------------------------
// Throughput probes: the legacy acceptance workload (k=2, stages=8, p=0.5)
// plus a rho sweep at k=4, stages=6 — the gate workload for the flat-pool
// engine is rho=0.8 there.
// ---------------------------------------------------------------------------

struct ProbeResult {
  double wall_s = 0.0;         // best-of-N wall time for one full run
  double warmup_s = 0.0;       // phase split (obs mode only, else 0)
  double measure_s = 0.0;
  std::int64_t cycles = 0;      // warmup + measurement cycles per run
  std::uint64_t packets = 0;    // packets delivered in the best run
};

ProbeResult run_probe(ksw::sim::NetworkConfig cfg, int repeats) {
  ProbeResult best;
  for (int rep = 0; rep < repeats; ++rep) {
    cfg.seed = static_cast<std::uint64_t>(rep) + 1;
    const auto start = std::chrono::steady_clock::now();
    const ksw::sim::NetworkResults r = ksw::sim::run_network(cfg);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (rep == 0 || wall < best.wall_s) {
      best.wall_s = wall;
      best.cycles = cfg.warmup_cycles + cfg.measure_cycles;
      best.packets = r.packets_delivered;
      if (cfg.obs.enabled && ksw::obs::kEnabled) {
        best.warmup_s = r.metrics.timers().count("sim.phase.warmup") != 0
                            ? r.metrics.timers()
                                  .at("sim.phase.warmup")
                                  ->seconds()
                            : 0.0;
        best.measure_s = r.metrics.timers().count("sim.phase.measure") != 0
                             ? r.metrics.timers()
                                   .at("sim.phase.measure")
                                   ->seconds()
                             : 0.0;
      }
    }
  }
  return best;
}

/// One recorded baseline probe, keyed by workload.
struct BaselineEntry {
  unsigned k = 0;
  unsigned stages = 0;
  double p = 0.0;
  bool obs = false;
  double packets_per_sec = 0.0;
};

struct Baseline {
  bool file_found = false;
  std::string path;
  std::vector<BaselineEntry> entries;

  [[nodiscard]] const BaselineEntry* find(const ksw::sim::NetworkConfig& cfg)
      const {
    for (const BaselineEntry& e : entries)
      if (e.k == cfg.k && e.stages == cfg.stages && e.p == cfg.p &&
          e.obs == cfg.obs.enabled)
        return &e;
    return nullptr;
  }
};

/// Load a JSONL baseline (one BENCH_perf.json object per line, with or
/// without the "BENCH_perf.json " prefix). Malformed lines are skipped:
/// a damaged baseline degrades to "no entry", never to a crash.
Baseline load_baseline(const std::string& path) {
  Baseline b;
  b.path = path;
  std::ifstream in(path);
  if (!in) return b;
  b.file_found = true;
  std::string line;
  while (std::getline(in, line)) {
    const std::string prefix = "BENCH_perf.json ";
    if (line.rfind(prefix, 0) == 0) line = line.substr(prefix.size());
    if (line.empty()) continue;
    try {
      const ksw::io::Json j = ksw::io::Json::parse(line);
      BaselineEntry e;
      e.k = static_cast<unsigned>(j.at("k").as_int());
      e.stages = static_cast<unsigned>(j.at("stages").as_int());
      e.p = j.at("p").as_double();
      e.obs = j.at("obs").as_string() == "on";
      e.packets_per_sec = j.at("packets_per_sec").as_double();
      b.entries.push_back(e);
    } catch (const std::exception&) {
      // skip
    }
  }
  return b;
}

/// Print the baseline comparison for one probe; returns false when the
/// probe regresses past the 20% floor (only meaningful under --gate).
bool print_baseline_line(const Baseline& baseline,
                         const ksw::sim::NetworkConfig& cfg,
                         double packets_per_sec) {
  if (!baseline.file_found) {
    std::printf(
        "  vs baseline     none (%s not found; record one with "
        "scripts/check_perf.sh --update)\n",
        baseline.path.c_str());
    return true;
  }
  const BaselineEntry* e = baseline.find(cfg);
  if (e == nullptr || e->packets_per_sec <= 0.0) {
    std::printf(
        "  vs baseline     no entry for this workload in %s\n",
        baseline.path.c_str());
    return true;
  }
  const double ratio = packets_per_sec / e->packets_per_sec;
  const bool ok = ratio >= 0.8;
  std::printf("  vs baseline     %.2fx (baseline %.3e packets/sec)%s\n",
              ratio, e->packets_per_sec,
              ok ? "" : "  ** REGRESSION > 20% **");
  return ok;
}

void print_probe(const ksw::sim::NetworkConfig& cfg, const ProbeResult& r) {
  const double cycles_per_sec =
      static_cast<double>(r.cycles) / r.wall_s;
  const double packets_per_sec =
      static_cast<double>(r.packets) / r.wall_s;
  std::printf("simulator throughput (k=%u, stages=%u, p=%g, obs=%s):\n",
              cfg.k, cfg.stages, cfg.p, cfg.obs.enabled ? "on" : "off");
  std::printf("  wall            %.4f s (best of runs)\n", r.wall_s);
  std::printf("  cycles/sec      %.3e\n", cycles_per_sec);
  std::printf("  packets/sec     %.3e\n", packets_per_sec);
  if (cfg.obs.enabled && ksw::obs::kEnabled)
    std::printf("  phase split     warmup %.4f s, measure %.4f s\n",
                r.warmup_s, r.measure_s);

  ksw::io::Json j = ksw::io::Json::object();
  j.set("k", static_cast<std::int64_t>(cfg.k));
  j.set("stages", static_cast<std::int64_t>(cfg.stages));
  j.set("p", cfg.p);
  j.set("rho", cfg.rho());
  j.set("obs", cfg.obs.enabled ? "on" : "off");
  j.set("cycles", r.cycles);
  j.set("packets", r.packets);
  j.set("wall_s", r.wall_s);
  j.set("cycles_per_sec", cycles_per_sec);
  j.set("packets_per_sec", packets_per_sec);
  if (cfg.obs.enabled && ksw::obs::kEnabled) {
    j.set("warmup_s", r.warmup_s);
    j.set("measure_s", r.measure_s);
  }
  std::printf("BENCH_perf.json %s\n", j.to_string(0).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool perf_only = false;
  bool obs_enabled = false;
  bool gate = false;
  std::string baseline_path = "BENCH_perf.json";
  std::vector<char*> passthrough;
  passthrough.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--perf-only") == 0) {
      perf_only = true;
    } else if (std::strcmp(argv[i], "--obs=on") == 0) {
      obs_enabled = true;
    } else if (std::strcmp(argv[i], "--obs=off") == 0) {
      obs_enabled = false;
    } else if (std::strcmp(argv[i], "--gate") == 0) {
      gate = true;
    } else if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      baseline_path = argv[i] + 11;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const Baseline baseline = load_baseline(baseline_path);
  bool gate_ok = true;

  {
    // Legacy acceptance probe; scripts/check_obs_overhead.sh keys on this
    // line (k=2, stages=8), so it stays first.
    ksw::sim::NetworkConfig cfg;
    cfg.k = 2;
    cfg.stages = 8;
    cfg.p = 0.5;
    cfg.warmup_cycles = 1'000;
    cfg.measure_cycles = 20'000;
    cfg.obs.enabled = obs_enabled;
    const ProbeResult r = run_probe(cfg, 3);
    print_probe(cfg, r);
    gate_ok &= print_baseline_line(
        baseline, cfg, static_cast<double>(r.packets) / r.wall_s);
  }
  for (const double rho : {0.5, 0.8, 0.95}) {
    ksw::sim::NetworkConfig cfg;
    cfg.k = 4;
    cfg.stages = 6;
    cfg.p = rho;  // unit service, bulk 1: rho == p
    cfg.warmup_cycles = 500;
    cfg.measure_cycles = 4'000;
    cfg.obs.enabled = obs_enabled;
    const ProbeResult r = run_probe(cfg, 3);
    print_probe(cfg, r);
    gate_ok &= print_baseline_line(
        baseline, cfg, static_cast<double>(r.packets) / r.wall_s);
  }
  if (gate && !gate_ok) {
    std::printf(
        "perf gate: FAILED — throughput regressed > 20%% vs %s\n",
        baseline.path.c_str());
    return 3;
  }
  if (gate)
    std::printf("perf gate: OK (within 20%% of %s)\n",
                baseline.path.c_str());
  if (perf_only) return 0;

  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             passthrough.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
