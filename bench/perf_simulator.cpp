// Engine micro-benchmarks (google-benchmark): throughput of the analytic
// kernels and the cycle-accurate simulator.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/first_stage.hpp"
#include "core/total_delay.hpp"
#include "sim/first_stage_sim.hpp"
#include "sim/network.hpp"

namespace {

void BM_FirstStageMoments(benchmark::State& state) {
  ksw::core::QueueSpec spec{
      std::shared_ptr<ksw::core::ArrivalModel>(
          ksw::core::make_uniform_arrivals(2, 2, 0.5)),
      std::make_shared<ksw::core::DeterministicService>(4)};
  const ksw::core::FirstStage fs(spec);
  for (auto _ : state) benchmark::DoNotOptimize(fs.moments().variance);
}
BENCHMARK(BM_FirstStageMoments);

void BM_DistributionInversion(benchmark::State& state) {
  ksw::core::QueueSpec spec{
      std::shared_ptr<ksw::core::ArrivalModel>(
          ksw::core::make_uniform_arrivals(2, 2, 0.5)),
      std::make_shared<ksw::core::DeterministicService>(1)};
  const ksw::core::FirstStage fs(spec);
  const auto length = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(fs.distribution(length).back());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DistributionInversion)->Range(64, 2048)->Complexity();

void BM_TotalDelayPrediction(benchmark::State& state) {
  ksw::core::NetworkTrafficSpec spec;
  spec.k = 2;
  spec.p = 0.5;
  const ksw::core::LaterStages ls(spec);
  for (auto _ : state) {
    const ksw::core::TotalDelay td(ls, 12);
    benchmark::DoNotOptimize(td.variance_total());
  }
}
BENCHMARK(BM_TotalDelayPrediction);

void BM_SingleSwitchSim(benchmark::State& state) {
  ksw::sim::FirstStageConfig cfg;
  cfg.p = 0.5;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = state.range(0);
  for (auto _ : state) {
    cfg.seed += 1;  // fresh stream each iteration
    benchmark::DoNotOptimize(ksw::sim::run_first_stage(cfg).messages);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SingleSwitchSim)->Arg(10'000);

void BM_NetworkSimCyclesPerSecond(benchmark::State& state) {
  ksw::sim::NetworkConfig cfg;
  cfg.k = 2;
  cfg.stages = static_cast<unsigned>(state.range(0));
  cfg.p = 0.5;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 2'000;
  for (auto _ : state) {
    cfg.seed += 1;
    benchmark::DoNotOptimize(ksw::sim::run_network(cfg).packets_delivered);
  }
  // One item = one port-cycle of switching work.
  state.SetItemsProcessed(state.iterations() * cfg.measure_cycles *
                          (1ll << cfg.stages) * cfg.stages);
}
BENCHMARK(BM_NetworkSimCyclesPerSecond)->Arg(6)->Arg(8)->Arg(10);

}  // namespace
