// Extension (Section VI future work) — Finite buffers: delay and loss vs
// buffer depth, against the infinite-buffer prediction. The paper notes
// that "for light-to-moderate loads, moderate-sized buffers provide
// approximately the same performance as infinite buffers"; this harness
// quantifies how quickly that holds.
#include <iostream>

#include "bench_common.hpp"
#include "core/first_stage.hpp"
#include "core/later_stages.hpp"
#include "sim/network.hpp"
#include "tables/table.hpp"

namespace {

void run_load(double rho, const ksw::bench::Options& opt) {
  ksw::core::NetworkTrafficSpec spec;
  spec.k = 2;
  spec.p = rho;
  const ksw::core::LaterStages ls(spec);

  // Infinite-buffer backlog tail P(s > c) from the exact unfinished-work
  // distribution (Theorem 1's Psi) — a first-order predictor of where
  // drops stop mattering.
  const ksw::core::FirstStage first(spec.first_stage_queue());

  ksw::tables::Table table(
      "Finite buffers (k=2, 6 stages, rho=" +
          ksw::tables::format_number(rho, 1) +
          "): deep-stage waiting vs buffer capacity",
      {"capacity", "stage-6 wait", "drop fraction", "P(s>c) pred",
       "inf-buffer est"});

  for (unsigned cap : {1u, 2u, 4u, 8u, 16u, 0u}) {
    ksw::sim::NetworkConfig cfg;
    cfg.k = 2;
    cfg.stages = 6;
    cfg.p = rho;
    cfg.buffer_capacity = cap;
    cfg.seed = opt.seed;
    cfg.warmup_cycles = opt.cycles(5'000);
    cfg.measure_cycles = opt.cycles(60'000);
    const auto r = ksw::sim::run_network(cfg);
    const double drop =
        r.packets_injected + r.packets_dropped == 0
            ? 0.0
            : static_cast<double>(r.packets_dropped) /
                  static_cast<double>(r.packets_injected + r.packets_dropped);
    table.begin_row(cap == 0 ? "infinite" : std::to_string(cap))
        .add_number(r.stage_wait[5].mean())
        .add_number(drop, 5);
    if (cap == 0)
      table.add_cell("0");
    else
      table.add_number(first.overflow_probability(cap), 5);
    table.add_number(ls.mean_limit());
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = ksw::bench::parse_options(argc, argv);
  run_load(0.5, opt);
  run_load(0.8, opt);
  return 0;
}
