// Tables VII-XII — Comparison of predictions to simulations: total waiting
// time mean and variance for n in {3, 6, 9, 12} stages over the paper's
// grid (rho in {0.2, 0.5, 0.8}) x (m in {1, 4}), k = 2.
//
//   Table VII : rho = 0.2,  m = 1      Table VIII: p = 0.05,  m = 4
//   Table IX  : rho = 0.5,  m = 1      Table X   : p = 0.125, m = 4
//   Table XI  : rho = 0.8,  m = 1      Table XII : p = 0.2,   m = 4
#include <iostream>

#include "bench_common.hpp"
#include "core/total_delay.hpp"
#include "sim/network.hpp"
#include "tables/table.hpp"

namespace {

struct Case {
  const char* label;
  double rho;
  unsigned m;
};

void run_case(const Case& c, const ksw::bench::Options& opt) {
  const double p = c.rho / static_cast<double>(c.m);

  ksw::sim::NetworkConfig cfg;
  cfg.k = 2;
  cfg.stages = 12;
  cfg.p = p;
  cfg.service = ksw::sim::ServiceSpec::deterministic(c.m);
  cfg.total_checkpoints = {3, 6, 9, 12};
  cfg.seed = opt.seed;
  cfg.warmup_cycles = opt.cycles(5'000);
  cfg.measure_cycles = opt.cycles(c.rho >= 0.8 ? 80'000 : 40'000);
  const auto r = ksw::sim::run_network(cfg);

  ksw::core::NetworkTrafficSpec spec;
  spec.k = 2;
  spec.p = p;
  spec.service = std::make_shared<ksw::core::DeterministicService>(c.m);
  const ksw::core::LaterStages ls(spec);

  ksw::tables::Table table(
      std::string(c.label) + ": comparison of predictions to simulations "
      "(k=2, p=" + ksw::tables::format_number(p, 4) +
      ", m=" + std::to_string(c.m) + ")",
      {"stages", "sim mean", "sim var", "pred mean", "pred var"});
  for (std::size_t i = 0; i < 4; ++i) {
    const unsigned n = 3 * (static_cast<unsigned>(i) + 1);
    const ksw::core::TotalDelay td(ls, n);
    table.begin_row(std::to_string(n) + " stages")
        .add_number(r.total_wait[i].mean(), 3)
        .add_number(r.total_wait[i].variance(), 3)
        .add_number(td.mean_total(), 3)
        .add_number(td.variance_total(), 3);
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = ksw::bench::parse_options(argc, argv);
  const Case cases[] = {
      {"Table VII", 0.2, 1},  {"Table VIII", 0.2, 4}, {"Table IX", 0.5, 1},
      {"Table X", 0.5, 4},    {"Table XI", 0.8, 1},   {"Table XII", 0.8, 4},
  };
  for (const auto& c : cases) run_case(c, opt);
  return 0;
}
