// Table II — Waiting times and variances, k varying (rho = 0.5, m = 1,
// q = 0). Per-stage simulation against the exact first stage and the
// k-generalized limit formula (eq. 11 with coefficient 4/(5k)).
#include <iostream>

#include "bench_common.hpp"
#include "core/later_stages.hpp"
#include "sim/network.hpp"
#include "tables/table.hpp"

namespace {

void run(const ksw::bench::Options& opt) {
  struct Config {
    unsigned k;
    unsigned stages;  // limited so k^stages stays laptop-sized
  };
  const Config configs[] = {{2, 8}, {4, 5}, {8, 4}};

  std::vector<std::string> headers = {"row"};
  for (const auto& c : configs) {
    headers.push_back("w (k=" + std::to_string(c.k) + ")");
    headers.push_back("v (k=" + std::to_string(c.k) + ")");
  }
  ksw::tables::Table table(
      "Table II: waiting times and variances, k varying (rho=0.5, m=1, q=0)",
      headers);

  std::vector<ksw::sim::NetworkResults> results;
  std::vector<ksw::core::LaterStages> estimates;
  unsigned max_stages = 0;
  for (const auto& c : configs) {
    ksw::sim::NetworkConfig cfg;
    cfg.k = c.k;
    cfg.stages = c.stages;
    cfg.p = 0.5;
    cfg.seed = opt.seed;
    cfg.warmup_cycles = opt.cycles(5'000);
    cfg.measure_cycles = opt.cycles(50'000);
    results.push_back(ksw::sim::run_network(cfg));
    max_stages = std::max(max_stages, c.stages);

    ksw::core::NetworkTrafficSpec spec;
    spec.k = c.k;
    spec.p = 0.5;
    estimates.emplace_back(spec);
  }

  for (unsigned s = 0; s < max_stages; ++s) {
    table.begin_row("stage " + std::to_string(s + 1));
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (s < configs[i].stages)
        table.add_number(results[i].stage_wait[s].mean())
            .add_number(results[i].stage_wait[s].variance());
      else
        table.add_blank().add_blank();
    }
  }
  table.begin_row("ANALYSIS (eq 6/7)");
  for (const auto& ls : estimates)
    table.add_number(ls.mean_first_stage())
        .add_number(ls.variance_first_stage());
  table.begin_row("ESTIMATE (eq 11/13)");
  for (const auto& ls : estimates)
    table.add_number(ls.mean_limit()).add_number(ls.variance_limit());

  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  run(ksw::bench::parse_options(argc, argv));
  return 0;
}
